//! Executing a single scenario replication.
//!
//! [`run_scenario`] turns a declarative [`Scenario`] into one deterministic
//! simulation run: it generates the graph, pre-computes the churn/crash event
//! schedule with a dedicated RNG stream, configures the engine (loss
//! probability, worker threads), drives the protocol, and measures the
//! outcome. Everything is a pure function of `(scenario, seed)` — the thread
//! count only parallelises bitset unions, which are bit-identical in any
//! configuration.
//!
//! The execution core is generic over [`rpc_engine::Engine`], so the same
//! scheduling, driving and measuring code runs on two engines:
//!
//! * [`run_scenario`] / [`run_scenario_traced`] — the packed, word-parallel
//!   production [`Simulation`];
//! * [`run_scenario_unpacked`] / [`run_scenario_unpacked_traced`] — the
//!   [`UnpackedSimulation`] oracle (`Vec<bool>` bookkeeping, O(n) scans).
//!
//! Both consume randomness identically, so for any `(scenario, seed)` the two
//! must produce identical outcomes *and* identical per-round traces; the
//! property tests in `tests/scenario_props.rs` assert exactly that across the
//! registry and randomized scenarios.
//!
//! Coverage bookkeeping is word-parallel on the packed engine: the tracked
//! rumor's knower set is maintained incrementally
//! ([`Simulation::track_message`]), the coverage stop rule reads a
//! popcount-backed counter instead of scanning all `n` states per round, and
//! the final participating/informed counts are single popcount passes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rpc_engine::{
    derive_seed, sample_failures, sample_from_pool, Engine, PhaseSnapshot, Simulation,
    UnpackedSimulation,
};
use rpc_gossip::PushPullGossip;
use rpc_graphs::{Graph, NodeId};

use crate::spec::{ProtocolSpec, Scenario, StartPlacement, StopRule};

// Sub-stream indices for [`derive_seed`], so graph generation, environment
// sampling and the protocol run draw from independent RNG streams.
const STREAM_GRAPH: u64 = 0x0147_5241;
const STREAM_ENV: u64 = 0x02e5_56e3;
const STREAM_RUN: u64 = 0x0375_6e21;

/// The measured result of one scenario replication.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioOutcome {
    /// Whether the stop rule was satisfied before the round cap.
    pub completed: bool,
    /// Rounds executed.
    pub rounds: u64,
    /// Total packets sent (per-packet accounting).
    pub total_packets: u64,
    /// Total channel exchanges (per-channel-exchange accounting).
    pub total_exchanges: u64,
    /// Fraction of participating (alive and present) nodes that are fully
    /// informed at the end.
    pub coverage: f64,
    /// Fraction of all nodes that know the tracked rumor at the end.
    pub tracked_coverage: f64,
    /// The node whose original message is tracked as "the rumor".
    pub tracked_source: NodeId,
    /// Crashed nodes at the end of the run.
    pub crashed: usize,
    /// Departed (churned-out) nodes at the end of the run.
    pub departed: usize,
}

impl ScenarioOutcome {
    /// Average packets per node over the whole network.
    pub fn packets_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.total_packets as f64 / n as f64
        }
    }
}

/// One entry of a step-driven (push-pull) scenario's round-by-round record,
/// captured every time the stop rule is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundTrace {
    /// Completed rounds at capture time.
    pub round: u64,
    /// Nodes knowing all original messages.
    pub fully_informed: usize,
    /// Nodes knowing the tracked rumor.
    pub tracked_informed: usize,
    /// Cumulative packets sent.
    pub packets: u64,
}

/// The full observable trace of one scenario replication: per-round records
/// for step-driven protocols plus the phase snapshots every protocol marks.
/// Two engines implementing the same semantics must produce equal traces for
/// equal `(scenario, seed)` — this is what the packed-vs-unpacked property
/// tests compare.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioTrace {
    /// Stop-rule evaluations of the push-pull driver (empty for phase-based
    /// protocols, which run their phases as a block).
    pub rounds: Vec<RoundTrace>,
    /// Phase snapshots recorded in the metrics.
    pub phases: Vec<PhaseSnapshot>,
}

/// Runs one replication of `scenario` on the packed engine, deterministically
/// in `seed`.
///
/// `threads` is the engine worker-thread count used for large delivery
/// batches; the outcome is bit-identical for every value (see
/// `rpc_engine::parallel`).
pub fn run_scenario(scenario: &Scenario, seed: u64, threads: usize) -> ScenarioOutcome {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = Simulation::new(&graph, derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    run_scenario_core(scenario, &mut sim, &mut env_rng, None)
}

/// Like [`run_scenario`], additionally capturing the per-round trace.
pub fn run_scenario_traced(
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) -> (ScenarioOutcome, ScenarioTrace) {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = Simulation::new(&graph, derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let mut trace = ScenarioTrace::default();
    let outcome = run_scenario_core(scenario, &mut sim, &mut env_rng, Some(&mut trace));
    (outcome, trace)
}

/// Runs one replication on the unpacked reference oracle
/// ([`UnpackedSimulation`]). Must agree with [`run_scenario`] bit for bit;
/// exists for the equivalence tests and the benchmark baseline, not for
/// production runs.
pub fn run_scenario_unpacked(scenario: &Scenario, seed: u64) -> ScenarioOutcome {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = UnpackedSimulation::new(&graph, derive_seed(seed, STREAM_RUN, 0));
    run_scenario_core(scenario, &mut sim, &mut env_rng, None)
}

/// Like [`run_scenario_unpacked`], additionally capturing the per-round trace.
pub fn run_scenario_unpacked_traced(
    scenario: &Scenario,
    seed: u64,
) -> (ScenarioOutcome, ScenarioTrace) {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = UnpackedSimulation::new(&graph, derive_seed(seed, STREAM_RUN, 0));
    let mut trace = ScenarioTrace::default();
    let outcome = run_scenario_core(scenario, &mut sim, &mut env_rng, Some(&mut trace));
    (outcome, trace)
}

/// The engine-generic execution core shared by every entry point above.
fn run_scenario_core<E: Engine>(
    scenario: &Scenario,
    sim: &mut E,
    env_rng: &mut SmallRng,
    mut trace: Option<&mut ScenarioTrace>,
) -> ScenarioOutcome {
    let n = scenario.num_nodes();
    sim.set_loss_probability(scenario.environment.loss);
    schedule_environment(scenario, env_rng, sim);
    let tracked = place_rumor(scenario.environment.placement, sim.graph(), env_rng);
    sim.track_message(tracked);

    let (completed, rounds) = match scenario.protocol {
        ProtocolSpec::PushPull => drive_push_pull(scenario, sim, trace.as_deref_mut()),
        ProtocolSpec::FastGossiping | ProtocolSpec::Memory => {
            // Phase-based protocols run their phases as a block; churn, crash
            // and loss still apply through the engine hooks. Validation
            // guarantees the stop rule is `Complete` here.
            let outcome = scenario.protocol.run_on_engine(n, sim);
            (outcome.completed(), outcome.rounds())
        }
    };
    if let Some(trace) = trace {
        trace.phases = sim.metrics().phases().to_vec();
    }

    let participating = sim.participating_count();
    let fully_informed = sim.participating_informed_count();
    let coverage =
        if participating == 0 { 0.0 } else { fully_informed as f64 / participating as f64 };
    let tracked_coverage =
        if n == 0 { 0.0 } else { sim.tracked_informed_count() as f64 / n as f64 };

    ScenarioOutcome {
        completed,
        rounds,
        total_packets: sim.metrics().total_packets(),
        total_exchanges: sim.metrics().total_exchanges(),
        coverage,
        tracked_coverage,
        tracked_source: tracked,
        crashed: n - sim.alive_count(),
        departed: n - sim.present_count(),
    }
}

/// Pre-computes the churn waves and the crash burst and registers them with
/// the simulation's event schedule.
///
/// Waves are only sampled up to the effective round horizon (a `rounds:`
/// budget can be far below `max_rounds`), and each wave draws exclusively
/// from nodes that are *up* at its round, so every departed node stays out
/// for exactly its configured downtime even when `downtime > period`.
fn schedule_environment<E: Engine>(scenario: &Scenario, env_rng: &mut SmallRng, sim: &mut E) {
    let n = sim.num_nodes();
    let horizon = round_limit(scenario);
    if let Some(churn) = scenario.environment.churn {
        let count = ((churn.fraction * n as f64).round() as usize).min(n);
        if count > 0 {
            let mut down_until = vec![0u64; n];
            let mut wave = churn.period;
            // Events at round == horizon can never fire (the run executes
            // rounds 0..horizon), so the last sampled wave is at horizon - 1.
            while wave < horizon {
                let eligible: Vec<NodeId> =
                    (0..n as NodeId).filter(|&v| down_until[v as usize] <= wave).collect();
                let take = count.min(eligible.len());
                let nodes = sample_from_pool(eligible, take, env_rng);
                for &v in &nodes {
                    down_until[v as usize] = wave + churn.downtime;
                }
                sim.schedule_kill(wave, nodes.clone());
                sim.schedule_revive(wave + churn.downtime, nodes);
                wave += churn.period;
            }
        }
    }
    if let Some(crash) = scenario.environment.crash {
        if crash.count > 0 {
            sim.schedule_crash(crash.round, sample_failures(n, crash.count.min(n), env_rng));
        }
    }
}

/// The effective round bound of a run: the `rounds:` budget where one is set,
/// the scenario's hard cap otherwise.
fn round_limit(scenario: &Scenario) -> u64 {
    match scenario.stop {
        StopRule::Rounds(r) => r.min(scenario.max_rounds),
        _ => scenario.max_rounds,
    }
}

/// Picks the tracked rumor's source node according to the placement policy.
fn place_rumor(placement: StartPlacement, graph: &Graph, env_rng: &mut SmallRng) -> NodeId {
    let n = graph.num_nodes();
    match placement {
        StartPlacement::Random => env_rng.gen_range(0..n) as NodeId,
        StartPlacement::MinDegree => {
            graph.nodes().min_by_key(|&v| (graph.degree(v), v)).expect("non-empty graph")
        }
        StartPlacement::MaxDegree => graph
            .nodes()
            .max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v)))
            .expect("non-empty graph"),
    }
}

/// Drives push-pull one synchronous round at a time, evaluating the stop rule
/// between rounds. The round body itself is [`PushPullGossip::run_until`], so
/// scenario runs and plain protocol runs can never diverge in semantics or
/// accounting. The coverage rule reads the engine's tracked-rumor counter —
/// O(1) on the packed engine, a scan on the oracle.
fn drive_push_pull<E: Engine>(
    scenario: &Scenario,
    sim: &mut E,
    mut trace: Option<&mut ScenarioTrace>,
) -> (bool, u64) {
    let n = sim.num_nodes();
    let coverage_target = |fraction: f64| (fraction * n as f64).ceil() as usize;
    let satisfied = |sim: &E| match scenario.stop {
        StopRule::Complete => sim.gossip_complete(),
        StopRule::Rounds(_) => false, // handled by the round limit
        StopRule::Coverage(f) => sim.tracked_informed_count() >= coverage_target(f),
    };
    let limit = round_limit(scenario);
    let rounds = PushPullGossip::run_until(sim, limit as usize, |sim: &E| {
        if let Some(trace) = trace.as_deref_mut() {
            trace.rounds.push(RoundTrace {
                round: sim.metrics().rounds(),
                fully_informed: sim.fully_informed_count(),
                tracked_informed: sim.tracked_informed_count(),
                packets: sim.metrics().total_packets(),
            });
        }
        satisfied(sim)
    }) as u64;

    let completed = match scenario.stop {
        StopRule::Complete => sim.gossip_complete(),
        StopRule::Rounds(r) => rounds == r,
        StopRule::Coverage(f) => sim.tracked_informed_count() >= coverage_target(f),
    };
    (completed, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    fn er(n: usize) -> TopologySpec {
        TopologySpec::ErdosRenyiPaper { n }
    }

    #[test]
    fn clean_scenario_completes_with_full_coverage() {
        let s = Scenario::builder("clean", er(256)).build().unwrap();
        let o = run_scenario(&s, 1, 1);
        assert!(o.completed);
        assert!(o.rounds > 0);
        assert_eq!(o.coverage, 1.0);
        assert_eq!(o.tracked_coverage, 1.0);
        assert_eq!(o.crashed, 0);
        assert_eq!(o.departed, 0);
        assert!(o.packets_per_node(256) > 0.0);
    }

    #[test]
    fn outcome_is_deterministic_in_the_seed() {
        let s = Scenario::builder("det", er(256)).loss(0.1).churn(0.1, 3, 5).build().unwrap();
        assert_eq!(run_scenario(&s, 9, 1), run_scenario(&s, 9, 1));
        assert_ne!(run_scenario(&s, 9, 1), run_scenario(&s, 10, 1));
    }

    #[test]
    fn outcome_is_identical_for_any_thread_count() {
        let s = Scenario::builder("threads", er(512)).loss(0.2).churn(0.15, 2, 4).build().unwrap();
        let single = run_scenario(&s, 3, 1);
        let multi = run_scenario(&s, 3, 4);
        assert_eq!(single, multi);
    }

    #[test]
    fn lossy_scenario_still_completes_with_more_rounds() {
        let clean = Scenario::builder("clean", er(256)).build().unwrap();
        let lossy = Scenario::builder("lossy", er(256)).loss(0.4).build().unwrap();
        let a = run_scenario(&clean, 5, 1);
        let b = run_scenario(&lossy, 5, 1);
        assert!(a.completed && b.completed);
        assert!(b.rounds >= a.rounds, "loss should not speed gossiping up");
    }

    #[test]
    fn round_budget_is_honoured_exactly() {
        let s = Scenario::builder("budget", er(128)).stop(StopRule::Rounds(7)).build().unwrap();
        let o = run_scenario(&s, 2, 1);
        assert!(o.completed);
        assert_eq!(o.rounds, 7);
    }

    #[test]
    fn coverage_stop_halts_before_completion() {
        let s = Scenario::builder("cov", er(512))
            .placement(StartPlacement::MinDegree)
            .stop(StopRule::Coverage(0.5))
            .build()
            .unwrap();
        let o = run_scenario(&s, 4, 1);
        assert!(o.completed);
        assert!(o.tracked_coverage >= 0.5);
        let full = Scenario::builder("full", er(512)).build().unwrap();
        assert!(o.rounds < run_scenario(&full, 4, 1).rounds);
    }

    #[test]
    fn crash_burst_reduces_final_coverage_population() {
        let s = Scenario::builder("crash", er(256))
            .crash(2, 64)
            .stop(StopRule::Rounds(30))
            .build()
            .unwrap();
        let o = run_scenario(&s, 6, 1);
        assert_eq!(o.crashed, 64);
        assert_eq!(o.departed, 0);
    }

    #[test]
    fn churn_departs_and_rejoins_nodes() {
        // Downtime longer than the residual run leaves the last wave out.
        let s = Scenario::builder("churn", er(256))
            .churn(0.2, 5, 1000)
            .stop(StopRule::Rounds(12))
            .build()
            .unwrap();
        let o = run_scenario(&s, 7, 1);
        assert!(o.departed > 0, "last churn wave should still be away");
    }

    #[test]
    fn phase_protocols_run_under_hostile_environments() {
        for protocol in [ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            let s = Scenario::builder("hostile", er(256))
                .protocol(protocol)
                .loss(0.05)
                .crash(4, 16)
                .build()
                .unwrap();
            let o = run_scenario(&s, 8, 1);
            assert!(o.rounds > 0, "{} executed no rounds", protocol.name());
            assert_eq!(o.crashed, 16);
        }
    }

    #[test]
    fn adversarial_placement_tracks_the_min_degree_node() {
        let s =
            Scenario::builder("adv", er(256)).placement(StartPlacement::MinDegree).build().unwrap();
        let o = run_scenario(&s, 11, 1);
        let graph = s.topology.build().generate(derive_seed(11, STREAM_GRAPH, 0));
        let min_deg = graph.nodes().map(|v| graph.degree(v)).min().unwrap();
        assert_eq!(graph.degree(o.tracked_source), min_deg);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_progress() {
        let s = Scenario::builder("traced", er(128)).loss(0.1).build().unwrap();
        let plain = run_scenario(&s, 13, 1);
        let (traced, trace) = run_scenario_traced(&s, 13, 1);
        assert_eq!(plain, traced, "tracing must not perturb the run");
        // One record per stop-rule evaluation: rounds + the final check.
        assert_eq!(trace.rounds.len() as u64, traced.rounds + 1);
        let last = trace.rounds.last().unwrap();
        assert_eq!(last.round, traced.rounds);
        assert_eq!(last.packets, traced.total_packets);
        assert!(trace.rounds.windows(2).all(|w| w[0].fully_informed <= w[1].fully_informed));
        // Push-pull driving marks no phases.
        assert!(trace.phases.is_empty());
    }

    #[test]
    fn unpacked_oracle_agrees_on_a_hostile_scenario() {
        let s = Scenario::builder("oracle", er(192))
            .loss(0.15)
            .churn(0.1, 3, 4)
            .crash(5, 12)
            .placement(StartPlacement::MaxDegree)
            .build()
            .unwrap();
        let (packed, packed_trace) = run_scenario_traced(&s, 21, 1);
        let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&s, 21);
        assert_eq!(packed, unpacked);
        assert_eq!(packed_trace, unpacked_trace);
        assert_eq!(run_scenario_unpacked(&s, 21), unpacked);
    }

    #[test]
    fn single_node_scenario_is_trivially_complete() {
        let s = Scenario::builder("one", TopologySpec::Complete { n: 1 }).build().unwrap();
        for (o, trace) in [run_scenario_traced(&s, 1, 1), run_scenario_unpacked_traced(&s, 1)] {
            assert!(o.completed);
            assert_eq!(o.rounds, 0, "a single node has nothing to learn");
            assert_eq!(o.total_packets, 0);
            assert_eq!(o.coverage, 1.0);
            assert_eq!(o.tracked_coverage, 1.0);
            assert_eq!(trace.rounds.len(), 1, "only the initial stop-rule check runs");
        }
    }
}
