//! Executing a single scenario replication.
//!
//! [`run_scenario`] turns a declarative [`Scenario`] into one deterministic
//! simulation run: it generates the graph, pre-computes the churn/crash event
//! schedule with a dedicated RNG stream, configures the engine (loss
//! probability, worker threads), drives the protocol, and measures the
//! outcome. Everything is a pure function of `(scenario, seed)` — the thread
//! count only parallelises bitset unions, which are bit-identical in any
//! configuration.
//!
//! ## One stepper for every protocol
//!
//! Every protocol — push-pull *and* the phase-based fast-gossiping and
//! memory-model algorithms — is driven through the resumable
//! [`rpc_gossip::ProtocolDriver`] interface, one synchronous round per step.
//! The executor evaluates the stop rule between any two rounds, records one
//! [`RoundTrace`] row per evaluation, enforces the scenario's `max_rounds`
//! cap uniformly, and reports *why* the run ended in
//! [`ScenarioOutcome::stopped_by`]. Because each driver consumes randomness
//! exactly like its block `run_on_engine` entry point, a stepped run under
//! [`StopRule::Complete`] is bit-identical to the legacy block run.
//!
//! The execution core is generic over [`rpc_engine::Engine`], so the same
//! scheduling, driving and measuring code runs on two engines:
//!
//! * [`run_scenario`] / [`run_scenario_traced`] — the packed, word-parallel
//!   production [`Simulation`];
//! * [`run_scenario_unpacked`] / [`run_scenario_unpacked_traced`] — the
//!   [`UnpackedSimulation`] oracle (`Vec<bool>` bookkeeping, O(n) scans).
//!
//! Both consume randomness identically, so for any `(scenario, seed)` the two
//! must produce identical outcomes *and* identical per-round traces; the
//! property tests in `tests/packed_vs_unpacked.rs` assert exactly that across
//! the registry and randomized scenarios.
//!
//! Coverage bookkeeping is word-parallel on the packed engine: the tracked
//! rumor's knower set is maintained incrementally
//! ([`Simulation::track_message`]), the coverage stop rule reads a
//! popcount-backed counter instead of scanning all `n` states per round, and
//! the final participating/informed counts are single popcount passes.
//!
//! ## Multi-rumor streaming
//!
//! When the scenario carries an [`InjectionSpec`], the engines run in
//! *streaming* mode: the message universe is the rumor count `R` (decoupled
//! from `n`), every node starts empty, and rumors arrive mid-run at scheduled
//! `(round, source)` coordinates. The RNG-draw ordering contract extends the
//! environment stream: the classic rumor-placement draw is **always**
//! consumed first (so classic and streaming runs stay aligned per stream),
//! then [`sample_injection_schedule`](self) draws the injection schedule —
//! Poisson arrival counts and uniform sources in round order; hotspot and
//! explicit patterns draw nothing. The engines replay the schedule as
//! draw-free liveness events at round boundaries, so the run stream never
//! shifts. Per-rumor completion rounds and the in-flight high-water mark are
//! latched between rounds and reported in [`ScenarioOutcome::rumor_stats`];
//! [`StopRule::AllRumors`] ends the run once every rumor has settled
//! (completed or expired).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rpc_engine::{
    derive_seed, sample_failures, sample_from_pool, Engine, MessageId, PhaseSnapshot, Simulation,
    SimulationArena, UnpackedSimulation,
};
use rpc_gossip::{
    BroadcastDriver, ElectionSummary, FastGossiping, FastGossipingConfig, FastGossipingDriver,
    LeaderElectionDriver, MemoryDriver, MemoryGossip, ProtocolDriver, PushPullDriver, StepStatus,
};
use rpc_graphs::{Graph, GraphArena, NodeId};
use rpc_obs::{CoreRounds, NoopObserver, ObsEvent, Observer};

use crate::spec::{
    zone_members, InjectPattern, InjectionSpec, ProtocolSpec, Scenario, ScenarioError,
    StartPlacement, StopRule,
};

// Sub-stream indices for [`derive_seed`], so graph generation, environment
// sampling and the protocol run draw from independent RNG streams.
const STREAM_GRAPH: u64 = 0x0147_5241;
const STREAM_ENV: u64 = 0x02e5_56e3;
const STREAM_RUN: u64 = 0x0375_6e21;

/// The engine seeds a scenario replication derives from `seed`:
/// `(graph_seed, run_seed)`. Exposed so harnesses that compare a stepped
/// [`run_scenario`] against a block `run_on_engine` (the `scenario_step`
/// bench, equivalence tests) can run the block side on **exactly** the graph
/// and RNG stream the stepped side uses.
pub fn scenario_engine_seeds(seed: u64) -> (u64, u64) {
    (derive_seed(seed, STREAM_GRAPH, 0), derive_seed(seed, STREAM_RUN, 0))
}

/// Everything the node runtime (`rpc-runtime`) needs to replicate a scenario
/// run outside the in-process executor: the derived engine seeds, the tracked
/// rumor's source (drawn from the environment stream exactly as
/// [`run_scenario`] draws it), and the parameters of the drive loop.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimePlan {
    /// Seed for the topology generator (the graph stream of `seed`).
    pub graph_seed: u64,
    /// Seed for every node's engine replica (the run stream of `seed`).
    pub run_seed: u64,
    /// The tracked rumor's source node.
    pub tracked: NodeId,
    /// The scenario's stop rule.
    pub stop: StopRule,
    /// Hard cap on executed rounds.
    pub max_rounds: u64,
    /// Number of nodes.
    pub n: usize,
}

/// Derives the [`RuntimePlan`] of `scenario` under `seed` against the
/// already generated `graph`, for the node runtime's coordinator.
///
/// The runtime covers the **benign, classic, push-pull** slice of the
/// scenario space — per-round lockstep equality with [`run_scenario_traced`]
/// is only defined where the simulator's randomness is confined to the run
/// stream every node actor replicates. Anything else (a phase-based or
/// election protocol, a hostile environment, streaming injection) is
/// rejected with a [`ScenarioError::Invalid`] naming the unsupported
/// dimension; faults belong to the runtime's nemesis transport, not the
/// scenario's environment schedule.
pub fn plan_runtime(
    scenario: &Scenario,
    seed: u64,
    graph: &Graph,
) -> Result<RuntimePlan, ScenarioError> {
    if scenario.protocol != ProtocolSpec::PushPull {
        return Err(ScenarioError::Invalid(format!(
            "the node runtime drives the push-pull protocol only, not {}",
            scenario.protocol.name()
        )));
    }
    if scenario.environment.is_hostile() {
        return Err(ScenarioError::Invalid(
            "the node runtime requires a benign environment (no loss, churn, \
             crash, edge-churn or byzantine dimensions): faults are injected \
             by its nemesis transport instead"
                .into(),
        ));
    }
    if scenario.injection.is_some() {
        return Err(ScenarioError::Invalid(
            "the node runtime drives classic (one-rumor-per-node) runs only, \
             not streaming injection"
                .into(),
        ));
    }
    let n = scenario.num_nodes();
    if graph.num_nodes() != n {
        return Err(ScenarioError::Invalid(format!(
            "graph has {} nodes but the scenario specifies n = {n}",
            graph.num_nodes()
        )));
    }
    let (graph_seed, run_seed) = scenario_engine_seeds(seed);
    // Benign environments schedule nothing, so the placement draw is the
    // environment stream's first — replicated here draw for draw.
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let tracked = place_rumor(scenario.environment.placement, graph, &mut env_rng);
    Ok(RuntimePlan {
        graph_seed,
        run_seed,
        tracked,
        stop: scenario.stop,
        max_rounds: scenario.max_rounds,
        n,
    })
}

/// Why a scenario run ended — the discriminant behind
/// [`ScenarioOutcome::completed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoppedBy {
    /// The protocol reached its natural termination with gossiping complete:
    /// the [`StopRule::Complete`] rule fired, or (under a round budget or a
    /// coverage threshold) the protocol's own schedule ended fully informed
    /// before the rule did.
    Complete,
    /// A [`StopRule::Rounds`] budget was spent exactly.
    RoundBudget,
    /// A [`StopRule::Coverage`] threshold was met by the tracked rumor (or,
    /// in a streaming run, by every injected rumor).
    CoverageReached,
    /// A [`StopRule::AllRumors`] rule fired: every streaming rumor either
    /// reached all participating nodes or expired.
    AllRumorsDone,
    /// The run ended **without** satisfying its stop rule: the scenario's
    /// `max_rounds` cap was exhausted, or a phase-based protocol's schedule
    /// ran out first (e.g. gossiping left incomplete by a crash burst, or a
    /// coverage threshold the rumor never met). Reported honestly instead of
    /// being conflated with rule satisfaction.
    MaxRoundsExhausted,
}

impl StoppedBy {
    /// Whether the run's stop condition was genuinely satisfied (everything
    /// except [`StoppedBy::MaxRoundsExhausted`]).
    pub fn satisfied(self) -> bool {
        self != StoppedBy::MaxRoundsExhausted
    }

    /// Short label for reports and CSVs (comma-free).
    pub fn label(self) -> &'static str {
        match self {
            StoppedBy::Complete => "complete",
            StoppedBy::RoundBudget => "round-budget",
            StoppedBy::CoverageReached => "coverage",
            StoppedBy::AllRumorsDone => "all-rumors",
            StoppedBy::MaxRoundsExhausted => "max-rounds",
        }
    }
}

/// Per-rumor statistics of a streaming run, measured engine-agnostically by
/// the executor's per-round rumor watch (so packed and unpacked runs must
/// agree bit for bit — they are part of [`ScenarioOutcome`] equality).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RumorStats {
    /// Round at which each rumor first reached every participating node
    /// (`None`: it never did — not injected in time, expired first, or the
    /// run ended). Indexed by rumor id; completion is latched, so a rumor
    /// that completes and later expires keeps its completion round.
    pub completion_rounds: Vec<Option<u64>>,
    /// High-water mark of simultaneously in-flight rumors (injected, not
    /// expired, not yet complete) across all stop-rule evaluations.
    pub inflight_high_water: usize,
    /// Rumors injected by the end of the run.
    pub injected: usize,
    /// Rumors expired by the end of the run.
    pub expired: usize,
}

impl RumorStats {
    /// Rumors that reached every participating node at some point.
    pub fn completed_count(&self) -> usize {
        self.completion_rounds.iter().filter(|c| c.is_some()).count()
    }

    /// Mean completion round over the completed rumors (0 when none
    /// completed).
    pub fn mean_completion_round(&self) -> f64 {
        let done: Vec<u64> = self.completion_rounds.iter().filter_map(|c| *c).collect();
        if done.is_empty() {
            0.0
        } else {
            done.iter().sum::<u64>() as f64 / done.len() as f64
        }
    }
}

/// The measured result of one scenario replication.
///
/// Equality deliberately skips [`Self::core_rounds`]: the chosen delivery
/// core depends on the configured engine thread count, while everything else
/// here is bit-identical across thread counts — and the equivalence tests
/// compare outcomes exactly that way.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Whether the stop rule was satisfied before the round cap (equivalent
    /// to [`StoppedBy::satisfied`] on [`Self::stopped_by`]).
    pub completed: bool,
    /// Why the run ended.
    pub stopped_by: StoppedBy,
    /// Rounds executed.
    pub rounds: u64,
    /// Total packets sent (per-packet accounting).
    pub total_packets: u64,
    /// Total channel exchanges (per-channel-exchange accounting).
    pub total_exchanges: u64,
    /// Fraction of participating (alive and present) nodes that are fully
    /// informed at the end.
    pub coverage: f64,
    /// Fraction of all nodes that know the tracked rumor at the end.
    pub tracked_coverage: f64,
    /// The node whose original message is tracked as "the rumor".
    pub tracked_source: NodeId,
    /// Crashed nodes at the end of the run.
    pub crashed: usize,
    /// Departed (churned-out) nodes at the end of the run.
    pub departed: usize,
    /// Phase snapshots the protocol marked (empty for push-pull). Previously
    /// these were only reachable through the traced probe path; surfacing
    /// them on the outcome lets the plain (untraced) path report per-phase
    /// costs too.
    pub phases: Vec<PhaseSnapshot>,
    /// Per-rumor statistics of a streaming run; `None` for classic (single
    /// tracked rumor) scenarios. Engine-agnostic, included in equality.
    pub rumor_stats: Option<RumorStats>,
    /// The election result of a `leader-election` scenario; `None` for every
    /// gossiping protocol. Engine-agnostic, included in equality.
    pub election: Option<ElectionSummary>,
    /// Delivery batches per adaptive core (scalar/eager/batch) over the run.
    /// **Diagnostics**: thread-count-dependent, excluded from equality.
    pub core_rounds: CoreRounds,
}

impl PartialEq for ScenarioOutcome {
    fn eq(&self, other: &Self) -> bool {
        // `core_rounds` excluded — see the type docs.
        self.completed == other.completed
            && self.stopped_by == other.stopped_by
            && self.rounds == other.rounds
            && self.total_packets == other.total_packets
            && self.total_exchanges == other.total_exchanges
            && self.coverage == other.coverage
            && self.tracked_coverage == other.tracked_coverage
            && self.tracked_source == other.tracked_source
            && self.crashed == other.crashed
            && self.departed == other.departed
            && self.phases == other.phases
            && self.rumor_stats == other.rumor_stats
            && self.election == other.election
    }
}

impl ScenarioOutcome {
    /// Average packets per node over the whole network.
    pub fn packets_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.total_packets as f64 / n as f64
        }
    }
}

/// One entry of a scenario's round-by-round record, captured every time the
/// stop rule is evaluated — one row per executed round plus the final
/// evaluation, for every protocol.
///
/// Equality deliberately skips [`Self::cores`] (thread-count-dependent
/// diagnostics), matching [`ScenarioOutcome`]'s convention.
#[derive(Clone, Copy, Debug)]
pub struct RoundTrace {
    /// Completed rounds at capture time.
    pub round: u64,
    /// Nodes knowing all original messages.
    pub fully_informed: usize,
    /// Nodes knowing the tracked rumor.
    pub tracked_informed: usize,
    /// Cumulative packets sent.
    pub packets: u64,
    /// Cumulative delivery batches per adaptive core at capture time.
    /// **Diagnostics**: thread-count-dependent, excluded from equality.
    pub cores: CoreRounds,
}

impl PartialEq for RoundTrace {
    fn eq(&self, other: &Self) -> bool {
        // `cores` excluded — see the type docs.
        self.round == other.round
            && self.fully_informed == other.fully_informed
            && self.tracked_informed == other.tracked_informed
            && self.packets == other.packets
    }
}

impl Eq for RoundTrace {}

/// The full observable trace of one scenario replication: per-round records
/// plus the phase snapshots the phase-based protocols mark. Two engines
/// implementing the same semantics must produce equal traces for equal
/// `(scenario, seed)` — this is what the packed-vs-unpacked property tests
/// compare.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioTrace {
    /// Stop-rule evaluations of the unified stepper, for every protocol.
    pub rounds: Vec<RoundTrace>,
    /// Phase snapshots recorded in the metrics (empty for push-pull, which
    /// marks no phases when scenario-driven).
    pub phases: Vec<PhaseSnapshot>,
}

/// Runs one replication of `scenario` on the packed engine, deterministically
/// in `seed`.
///
/// `threads` is the engine worker-thread count used for large delivery
/// batches; the outcome is bit-identical for every value (see
/// `rpc_engine::parallel`).
pub fn run_scenario(scenario: &Scenario, seed: u64, threads: usize) -> ScenarioOutcome {
    run_scenario_observed(scenario, seed, threads, &mut NoopObserver)
}

/// Like [`run_scenario`], additionally capturing the per-round trace.
pub fn run_scenario_traced(
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) -> (ScenarioOutcome, ScenarioTrace) {
    run_scenario_observed_traced(scenario, seed, threads, &mut NoopObserver)
}

/// [`run_scenario`] with an attached [`Observer`] receiving the engine-level
/// event stream (per-round progress, dispatch decisions, pool counters).
///
/// The zero-cost contract: with [`NoopObserver`] this monomorphizes to
/// [`run_scenario`] exactly, and with *any* observer the outcome (and trace,
/// see [`run_scenario_observed_traced`]) is bit-identical to the unobserved
/// run — observers are write-only sinks outside every seeded path
/// (property-pinned in `tests/obs_props.rs`).
pub fn run_scenario_observed<O: Observer>(
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    obs: &mut O,
) -> ScenarioOutcome {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim =
        new_packed(scenario, &graph, derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let outcome = run_scenario_core(scenario, &mut sim, &mut env_rng, None, obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Pool { stats: sim.pool_stats() });
    }
    outcome
}

/// [`run_scenario_observed`] additionally capturing the per-round trace.
pub fn run_scenario_observed_traced<O: Observer>(
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    obs: &mut O,
) -> (ScenarioOutcome, ScenarioTrace) {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim =
        new_packed(scenario, &graph, derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let mut trace = ScenarioTrace::default();
    let outcome = run_scenario_core(scenario, &mut sim, &mut env_rng, Some(&mut trace), obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Pool { stats: sim.pool_stats() });
    }
    (outcome, trace)
}

/// Reusable per-worker storage for [`run_scenario_in`]: the graph-generation
/// buffers ([`GraphArena`]) plus the simulation backing storage
/// ([`SimulationArena`]).
///
/// A Monte Carlo batch gives every worker thread one arena and runs all of
/// its repetitions through it; after the first repetition both the graph
/// generation and the simulation are allocation-free in steady state (the
/// buffers only grow when a later scenario is larger). Results are
/// bit-identical to the fresh-allocation [`run_scenario`] path for any
/// sequence of scenarios and seeds — the property tests pin this across
/// protocols, stop rules and thread counts.
#[derive(Debug, Default)]
pub struct ScenarioArena {
    pub(crate) graph: GraphArena,
    pub(crate) sim: SimulationArena,
}

/// Runs one replication of `scenario` through `arena`'s reusable storage —
/// the allocation-free counterpart of [`run_scenario`], with bit-identical
/// results for any prior arena use.
pub fn run_scenario_in(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) -> ScenarioOutcome {
    run_scenario_arena_core(arena, scenario, seed, threads, None, &mut NoopObserver)
}

/// Like [`run_scenario_in`], additionally capturing the per-round trace
/// (the arena counterpart of [`run_scenario_traced`]).
pub fn run_scenario_traced_in(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) -> (ScenarioOutcome, ScenarioTrace) {
    let mut trace = ScenarioTrace::default();
    let outcome = run_scenario_arena_core(
        arena,
        scenario,
        seed,
        threads,
        Some(&mut trace),
        &mut NoopObserver,
    );
    (outcome, trace)
}

/// [`run_scenario_in`] with an attached [`Observer`] — the arena counterpart
/// of [`run_scenario_observed`]. Also emits [`ObsEvent::Arena`] with the
/// arena's cumulative reuse counters after the run.
pub fn run_scenario_observed_in<O: Observer>(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    obs: &mut O,
) -> ScenarioOutcome {
    let outcome = run_scenario_arena_core(arena, scenario, seed, threads, None, obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Arena { graph: arena.graph.stats(), sim: arena.sim.stats() });
    }
    outcome
}

/// Shared arena entry point: generate the graph into the arena's buffers,
/// check a simulation out of the arena, run, recycle. Seed derivation is
/// identical to [`run_scenario`], so outcomes and traces must match the
/// fresh path bit for bit.
fn run_scenario_arena_core<O: Observer>(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
    trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> ScenarioOutcome {
    let ScenarioArena { graph, sim } = arena;
    scenario.topology.build().generate_into(derive_seed(seed, STREAM_GRAPH, 0), graph);
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let run_seed = derive_seed(seed, STREAM_RUN, 0);
    let mut engine = match &scenario.injection {
        Some(inj) => sim.checkout_streaming(graph.graph(), run_seed, inj.rumors),
        None => sim.checkout(graph.graph(), run_seed),
    }
    .with_threads(threads);
    let outcome = run_scenario_core(scenario, &mut engine, &mut env_rng, trace, obs);
    if O::ENABLED {
        obs.record(&ObsEvent::Pool { stats: engine.pool_stats() });
    }
    sim.recycle(engine);
    outcome
}

/// Runs one replication on the unpacked reference oracle
/// ([`UnpackedSimulation`]). Must agree with [`run_scenario`] bit for bit;
/// exists for the equivalence tests and the benchmark baseline, not for
/// production runs.
pub fn run_scenario_unpacked(scenario: &Scenario, seed: u64) -> ScenarioOutcome {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = new_unpacked(scenario, &graph, derive_seed(seed, STREAM_RUN, 0));
    run_scenario_core(scenario, &mut sim, &mut env_rng, None, &mut NoopObserver)
}

/// Like [`run_scenario_unpacked`], additionally capturing the per-round trace.
pub fn run_scenario_unpacked_traced(
    scenario: &Scenario,
    seed: u64,
) -> (ScenarioOutcome, ScenarioTrace) {
    let graph = scenario.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut sim = new_unpacked(scenario, &graph, derive_seed(seed, STREAM_RUN, 0));
    let mut trace = ScenarioTrace::default();
    let outcome =
        run_scenario_core(scenario, &mut sim, &mut env_rng, Some(&mut trace), &mut NoopObserver);
    (outcome, trace)
}

/// Fresh packed-engine construction: classic (one rumor per node, universe
/// `n`) without an injection spec, streaming (empty states over a `rumors`-
/// sized universe) with one. Seeding is identical in both modes.
fn new_packed<'g>(scenario: &Scenario, graph: &'g Graph, seed: u64) -> Simulation<'g> {
    match &scenario.injection {
        Some(inj) => Simulation::new_streaming(graph, seed, inj.rumors),
        None => Simulation::new(graph, seed),
    }
}

/// Fresh oracle construction, mirroring [`new_packed`].
fn new_unpacked<'g>(scenario: &Scenario, graph: &'g Graph, seed: u64) -> UnpackedSimulation<'g> {
    match &scenario.injection {
        Some(inj) => UnpackedSimulation::new_streaming(graph, seed, inj.rumors),
        None => UnpackedSimulation::new(graph, seed),
    }
}

/// The engine-generic execution core shared by every entry point above.
/// Instantiates the protocol's resumable driver with the same paper constants
/// [`ProtocolSpec::build`] uses — protocol dispatch ends here — and hands it
/// to [`run_prepared_core`].
fn run_scenario_core<E: Engine, O: Observer>(
    scenario: &Scenario,
    sim: &mut E,
    env_rng: &mut SmallRng,
    trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> ScenarioOutcome {
    let n = scenario.num_nodes();
    match scenario.protocol {
        ProtocolSpec::PushPull => {
            let mut driver = PushPullDriver::new(scenario.max_rounds as usize);
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
        ProtocolSpec::FastGossiping => {
            let mut driver = FastGossipingDriver::new(FastGossiping::paper(n), n);
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
        ProtocolSpec::Memory => {
            let mut driver = MemoryDriver::new(MemoryGossip::paper(n));
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
        ProtocolSpec::BroadcastPush => {
            let mut driver = BroadcastDriver::push(scenario.max_rounds as usize);
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
        ProtocolSpec::BroadcastPushPull => {
            let mut driver = BroadcastDriver::push_pull(scenario.max_rounds as usize);
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
        ProtocolSpec::LeaderElection => {
            let mut driver = LeaderElectionDriver::paper(n);
            run_prepared_core(scenario, sim, env_rng, &mut driver, trace, obs)
        }
    }
}

/// Runs one replication of `scenario` through `arena`, but with fast-gossiping
/// driven by an explicit [`FastGossipingConfig`] instead of the paper
/// defaults. The sweep engine's ablation cells use this to tune walk
/// probability and broadcast length while keeping the scenario machinery
/// (environment schedule, stop rules, seed derivation) byte-for-byte the same
/// as [`run_scenario_in`]; with `config == FastGossipingConfig::paper_defaults(n)`
/// the result is identical to a `ProtocolSpec::FastGossiping` scenario run.
pub(crate) fn run_fast_tuned_in(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    config: FastGossipingConfig,
    seed: u64,
    threads: usize,
) -> ScenarioOutcome {
    let ScenarioArena { graph, sim } = arena;
    scenario.topology.build().generate_into(derive_seed(seed, STREAM_GRAPH, 0), graph);
    let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
    let mut engine =
        sim.checkout(graph.graph(), derive_seed(seed, STREAM_RUN, 0)).with_threads(threads);
    let mut driver = FastGossipingDriver::new(FastGossiping::new(config), scenario.num_nodes());
    let outcome = run_prepared_core(
        scenario,
        &mut engine,
        &mut env_rng,
        &mut driver,
        None,
        &mut NoopObserver,
    );
    sim.recycle(engine);
    outcome
}

/// The driver-generic tail of the execution core: environment setup, rumor
/// placement, the unified stepper, and outcome measurement.
fn run_prepared_core<E: Engine, D: ProtocolDriver, O: Observer>(
    scenario: &Scenario,
    sim: &mut E,
    env_rng: &mut SmallRng,
    driver: &mut D,
    mut trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> ScenarioOutcome {
    let n = scenario.num_nodes();
    sim.set_loss_probability(scenario.environment.loss);
    schedule_environment(scenario, env_rng, sim);
    // The placement draw is consumed in both modes — injection-schedule
    // draws slot in strictly *after* rumor placement, so classic and
    // streaming runs share one draw-ordering contract.
    let placed = place_rumor(scenario.environment.placement, sim.graph(), env_rng);
    let mut watch: Option<RumorWatch> = None;
    let tracked = match &scenario.injection {
        None => {
            sim.track_message(placed);
            placed
        }
        Some(inj) => {
            // Sample the whole schedule here, then register draw-free events
            // with the engine: both engines replay the identical schedule
            // without touching their own RNG streams.
            let schedule = sample_injection_schedule(inj, scenario, n, env_rng);
            for (m, &(round, source)) in schedule.iter().enumerate() {
                sim.schedule_injection(round, source, m as MessageId);
                if let Some(ttl) = inj.ttl {
                    sim.schedule_expiry(round + ttl, m as MessageId);
                }
            }
            // The coverage metric follows rumor 0 — the first id of the
            // stream — so `tracked_coverage` stays meaningful.
            sim.track_message(0);
            watch = Some(RumorWatch::new(inj.rumors));
            schedule[0].1
        }
    };

    let (stopped_by, rounds) =
        drive(scenario, sim, driver, watch.as_mut(), trace.as_deref_mut(), obs);
    if let Some(watch) = watch.as_mut() {
        // Latch completions reached by the very last step (a Done/cap break
        // exits before the next top-of-loop evaluation). Observer-free: the
        // event stream covers stop-rule evaluations only.
        watch.latch(sim, sim.metrics().rounds());
    }
    if let Some(trace) = trace {
        trace.phases = sim.metrics().phases().to_vec();
    }

    let participating = sim.participating_count();
    let fully_informed = sim.participating_informed_count();
    let coverage =
        if participating == 0 { 0.0 } else { fully_informed as f64 / participating as f64 };
    let tracked_coverage =
        if n == 0 { 0.0 } else { sim.tracked_informed_count() as f64 / n as f64 };

    if O::ENABLED {
        obs.record(&ObsEvent::RunFinished {
            rounds,
            total_packets: sim.metrics().total_packets(),
            cores: sim.metrics().core_rounds(),
        });
    }

    ScenarioOutcome {
        completed: stopped_by.satisfied(),
        stopped_by,
        rounds,
        total_packets: sim.metrics().total_packets(),
        total_exchanges: sim.metrics().total_exchanges(),
        coverage,
        tracked_coverage,
        tracked_source: tracked,
        crashed: n - sim.alive_count(),
        departed: n - sim.present_count(),
        phases: sim.metrics().phases().to_vec(),
        rumor_stats: watch.map(|w| w.into_stats(sim)),
        election: driver.election_summary(),
        core_rounds: sim.metrics().core_rounds(),
    }
}

/// The executor-side bookkeeping of a streaming run: latched per-rumor
/// completion rounds and the in-flight high-water mark. Reads only the
/// engine-agnostic [`Engine`] rumor surface, so packed and unpacked runs
/// observe identical statistics.
struct RumorWatch {
    completion_rounds: Vec<Option<u64>>,
    inflight_high_water: usize,
}

impl RumorWatch {
    fn new(rumors: usize) -> Self {
        RumorWatch { completion_rounds: vec![None; rumors], inflight_high_water: 0 }
    }

    /// Latches completions visible in the current engine state (a rumor that
    /// later expires keeps its completion round). Returns the ids completing
    /// at this evaluation, for event emission.
    fn latch<E: Engine>(&mut self, sim: &E, round: u64) -> Vec<usize> {
        let mut fresh = Vec::new();
        for m in 0..self.completion_rounds.len() {
            if self.completion_rounds[m].is_none()
                && !sim.rumor_expired(m as MessageId)
                && sim.rumor_complete(m as MessageId)
            {
                self.completion_rounds[m] = Some(round);
                fresh.push(m);
            }
        }
        fresh
    }

    /// One per-evaluation observation: latch completions, update the
    /// in-flight high-water mark, and emit the rumor events.
    fn observe<E: Engine, O: Observer>(&mut self, sim: &E, round: u64, obs: &mut O) {
        let fresh = self.latch(sim, round);
        let (mut injected, mut expired, mut in_flight) = (0usize, 0usize, 0usize);
        for m in 0..self.completion_rounds.len() {
            let inj = sim.rumor_injected(m as MessageId);
            let exp = sim.rumor_expired(m as MessageId);
            if inj {
                injected += 1;
            }
            if exp {
                expired += 1;
            }
            if inj && !exp && self.completion_rounds[m].is_none() {
                in_flight += 1;
            }
        }
        self.inflight_high_water = self.inflight_high_water.max(in_flight);
        if O::ENABLED {
            for m in fresh {
                obs.record(&ObsEvent::RumorComplete { rumor: m, round });
            }
            obs.record(&ObsEvent::Rumors {
                round,
                injected,
                expired,
                in_flight,
                complete: self.completion_rounds.iter().filter(|c| c.is_some()).count(),
            });
        }
    }

    /// Whether every rumor has either completed (latched) or expired — the
    /// [`StopRule::AllRumors`] condition.
    fn all_settled<E: Engine>(&self, sim: &E) -> bool {
        (0..self.completion_rounds.len())
            .all(|m| self.completion_rounds[m].is_some() || sim.rumor_expired(m as MessageId))
    }

    /// Whether every rumor has either expired or been injected *and* reached
    /// `target` knowers — the per-rumor [`StopRule::Coverage`] condition.
    fn all_covered<E: Engine>(&self, sim: &E, target: usize) -> bool {
        (0..self.completion_rounds.len()).all(|m| {
            let m = m as MessageId;
            sim.rumor_expired(m) || (sim.rumor_injected(m) && sim.rumor_informed_count(m) >= target)
        })
    }

    fn into_stats<E: Engine>(self, sim: &E) -> RumorStats {
        let rumors = self.completion_rounds.len();
        RumorStats {
            completion_rounds: self.completion_rounds,
            inflight_high_water: self.inflight_high_water,
            injected: (0..rumors).filter(|&m| sim.rumor_injected(m as MessageId)).count(),
            expired: (0..rumors).filter(|&m| sim.rumor_expired(m as MessageId)).count(),
        }
    }
}

/// Drives any protocol one synchronous round at a time, evaluating the stop
/// rule (and recording a trace row) between rounds. Returns why the run
/// ended and how many rounds it executed.
///
/// The rule check order encodes the reporting semantics:
///
/// 1. the scenario's stop rule (so a rule firing exactly at the cap wins);
/// 2. the scenario's `max_rounds` cap, applied uniformly to every protocol;
/// 3. the driver's own schedule — [`StepStatus::Done`] before the rule fires
///    is reported as [`StoppedBy::Complete`] when gossiping finished and
///    [`StoppedBy::MaxRoundsExhausted`] otherwise.
///
/// Under a [`StopRule::Rounds`] budget the driver is stepped *past* gossip
/// completion when necessary — a round budget specifies a workload of exactly
/// `r` rounds, and those rounds draw randomness and send packets exactly like
/// the block loop under a budget always has.
fn drive<E: Engine, D: ProtocolDriver, O: Observer>(
    scenario: &Scenario,
    sim: &mut E,
    driver: &mut D,
    mut watch: Option<&mut RumorWatch>,
    mut trace: Option<&mut ScenarioTrace>,
    obs: &mut O,
) -> (StoppedBy, u64) {
    let mut rounds: u64 = 0;
    let mut prev_cores = CoreRounds::default();
    let stopped_by = loop {
        if let Some(trace) = trace.as_deref_mut() {
            trace.rounds.push(RoundTrace {
                round: sim.metrics().rounds(),
                fully_informed: sim.fully_informed_count(),
                tracked_informed: sim.tracked_informed_count(),
                packets: sim.metrics().total_packets(),
                cores: sim.metrics().core_rounds(),
            });
        }
        if O::ENABLED {
            obs.record(&ObsEvent::Round {
                round: sim.metrics().rounds(),
                fully_informed: sim.fully_informed_count(),
                tracked_informed: sim.tracked_informed_count(),
                packets: sim.metrics().total_packets(),
            });
        }
        if let Some(watch) = watch.as_deref_mut() {
            watch.observe(sim, sim.metrics().rounds(), obs);
        }
        match scenario.stop {
            StopRule::Complete => {
                if driver.finished(sim) {
                    break if driver.succeeded(sim) {
                        StoppedBy::Complete
                    } else {
                        // A phase-based schedule can end with its goal unmet
                        // (gossiping incomplete under crashes, a failed
                        // election); report it honestly.
                        StoppedBy::MaxRoundsExhausted
                    };
                }
            }
            StopRule::Rounds(r) => {
                if rounds == r {
                    break StoppedBy::RoundBudget;
                }
            }
            StopRule::Coverage(f) => {
                let target = coverage_target(f, sim.alive_count());
                // target == 0 only when every node has crashed; a dead
                // network never "reaches" coverage — let the run end via the
                // schedule or the cap and report MaxRoundsExhausted honestly.
                if target > 0 {
                    let reached = match watch.as_deref() {
                        // Streaming: the threshold applies to *every* rumor
                        // (expired rumors are excused).
                        Some(watch) => watch.all_covered(sim, target),
                        None => sim.tracked_informed_count() >= target,
                    };
                    if reached {
                        break StoppedBy::CoverageReached;
                    }
                }
            }
            StopRule::AllRumors => {
                // Validation guarantees an injection spec, hence a watch.
                let settled = watch
                    .as_deref()
                    .expect("all-rumors stop rule without an injection spec")
                    .all_settled(sim);
                if settled {
                    break StoppedBy::AllRumorsDone;
                }
            }
        }
        if rounds >= scenario.max_rounds {
            break StoppedBy::MaxRoundsExhausted;
        }
        // Time-varying loss: re-derive the effective per-packet rate for the
        // round about to execute (base rate compounded with every active
        // burst). With no bursts the base rate set once up front stands.
        if !scenario.environment.loss_bursts.is_empty() {
            sim.set_loss_probability(scenario.environment.loss_at(sim.metrics().rounds()));
        }
        let status = driver.step(sim);
        if O::ENABLED {
            // One dispatch event per round that actually delivered something:
            // the per-core counters only move when a delivery batch ran.
            let cores = sim.metrics().core_rounds();
            if cores != prev_cores {
                if let Some(record) = sim.metrics().last_dispatch() {
                    obs.record(&ObsEvent::Dispatch { round: sim.metrics().rounds(), record });
                }
                prev_cores = cores;
            }
        }
        match status {
            StepStatus::Done => {
                break if driver.succeeded(sim) {
                    StoppedBy::Complete
                } else {
                    StoppedBy::MaxRoundsExhausted
                };
            }
            StepStatus::Running => rounds += 1,
        }
    };
    (stopped_by, rounds)
}

/// The coverage rule's target: the tracked rumor must be known by at least
/// `⌈f · alive⌉` nodes, where `alive` is the **current, crash-adjusted
/// population** (churned-out nodes are still alive — they rejoin with state
/// intact — so they stay in the basis; crashed nodes are permanently gone, so
/// they leave it). Measuring against the full `n` instead would make a
/// `Coverage(f)` rule unreachable after a crash burst of more than
/// `(1 - f) · n` nodes, silently exhausting `max_rounds` on every run.
/// Informed nodes that crash *after* learning the rumor still count toward
/// the achieved side, which only makes the rule easier to satisfy. A target
/// of 0 (possible only when `alive == 0`) never fires — see the caller.
pub fn coverage_target(fraction: f64, alive: usize) -> usize {
    (fraction * alive as f64).ceil() as usize
}

/// Pre-computes every environment perturbation — churn waves, the crash
/// burst, edge-churn waves, the Byzantine set — and registers it with the
/// simulation's event schedule.
///
/// Waves are only sampled up to the effective round horizon (a `rounds:`
/// budget can be far below `max_rounds`), and each churn wave draws
/// exclusively from nodes that are *up* at its round, so every departed node
/// stays out for exactly its configured downtime even when
/// `downtime > period`.
///
/// ## RNG-draw ordering contract
///
/// All sampling comes from the dedicated environment stream (`STREAM_ENV`),
/// in this fixed order:
///
/// 1. node-churn waves, one per period below the horizon — with `zones` set,
///    each wave first draws its target zone, then samples the wave's nodes
///    from that zone's eligible members;
/// 2. the crash burst — from the named zone's members when `@zone` is given,
///    from the whole population otherwise;
/// 3. edge-churn waves, one per period below the horizon, each sampling an
///    undirected edge subset (both directed CSR slots go down together);
/// 4. the Byzantine set.
///
/// Rumor placement draws from the same stream *after* this function. The
/// benign fast path below is RNG-neutral: a dimension that is absent draws
/// nothing, so old scenarios' sequences are unchanged by the new dimensions.
fn schedule_environment<E: Engine>(scenario: &Scenario, env_rng: &mut SmallRng, sim: &mut E) {
    if !scenario.environment.is_hostile() {
        // Benign fast path. Safe exactly because `is_hostile` accounts for
        // every perturbing dimension (pinned in spec.rs tests) and because
        // a hostile run with no absent-dimension draws consumes the same
        // stream this early return leaves untouched.
        return;
    }
    let n = sim.num_nodes();
    let horizon = round_limit(scenario);
    if let Some(churn) = scenario.environment.churn {
        match scenario.environment.zones {
            None => {
                let count = ((churn.fraction * n as f64).round() as usize).min(n);
                if count > 0 {
                    let mut down_until = vec![0u64; n];
                    let mut wave = churn.period;
                    // Events at round == horizon can never fire (the run
                    // executes rounds 0..horizon), so the last sampled wave
                    // is at horizon - 1.
                    while wave < horizon {
                        let eligible: Vec<NodeId> =
                            (0..n as NodeId).filter(|&v| down_until[v as usize] <= wave).collect();
                        let take = count.min(eligible.len());
                        let nodes = sample_from_pool(eligible, take, env_rng);
                        for &v in &nodes {
                            down_until[v as usize] = wave + churn.downtime;
                        }
                        sim.schedule_kill(wave, nodes.clone());
                        sim.schedule_revive(wave + churn.downtime, nodes);
                        wave += churn.period;
                    }
                }
            }
            Some(zones) => {
                // Correlated churn: each wave takes out a fraction of one
                // zone (a "rack") instead of a cross-section of the network.
                let mut down_until = vec![0u64; n];
                let mut wave = churn.period;
                while wave < horizon {
                    let zone = env_rng.gen_range(0..zones);
                    let members = zone_members(zone, n, zones);
                    let count = ((churn.fraction * members.len() as f64).round() as usize)
                        .min(members.len());
                    let eligible: Vec<NodeId> =
                        members.filter(|&v| down_until[v as usize] <= wave).collect();
                    let take = count.min(eligible.len());
                    let nodes = sample_from_pool(eligible, take, env_rng);
                    for &v in &nodes {
                        down_until[v as usize] = wave + churn.downtime;
                    }
                    sim.schedule_kill(wave, nodes.clone());
                    sim.schedule_revive(wave + churn.downtime, nodes);
                    wave += churn.period;
                }
            }
        }
    }
    if let Some(crash) = scenario.environment.crash {
        if crash.count > 0 {
            let nodes = match crash.zone {
                // Validation guarantees the zones key is set, the zone index
                // is in range and the count fits the zone.
                Some(zone) => {
                    let zones = scenario.environment.zones.expect("crash zone requires zones");
                    let members: Vec<NodeId> = zone_members(zone, n, zones).collect();
                    let take = crash.count.min(members.len());
                    sample_from_pool(members, take, env_rng)
                }
                None => sample_failures(n, crash.count.min(n), env_rng),
            };
            sim.schedule_crash(crash.round, nodes);
        }
    }
    if let Some(edge_churn) = scenario.environment.edge_churn {
        let pairs = undirected_slot_pairs(sim.graph());
        let take = ((edge_churn.fraction * pairs.len() as f64).round() as usize).min(pairs.len());
        if take > 0 {
            let mut wave = edge_churn.period;
            while wave < horizon {
                let picked = sample_from_pool((0..pairs.len() as NodeId).collect(), take, env_rng);
                let mut slots = Vec::with_capacity(2 * take);
                for &p in &picked {
                    let (a, b) = pairs[p as usize];
                    slots.push(a);
                    slots.push(b);
                }
                sim.schedule_edge_outage(wave, slots);
                wave += edge_churn.period;
            }
        }
    }
    if scenario.environment.byzantine > 0.0 {
        let count = ((scenario.environment.byzantine * n as f64).round() as usize).min(n);
        if count > 0 {
            sim.set_byzantine(&sample_failures(n, count, env_rng));
        }
    }
}

/// Enumerates the graph's undirected edges as pairs of directed CSR slot
/// indices, so an edge-churn wave can take both directions of an edge down
/// together.
///
/// The adjacency is sorted per node, so parallel edges form contiguous runs;
/// the `k`-th occurrence of `u` in `v`'s list (with `u > v`) pairs with the
/// `k`-th occurrence of `v` in `u`'s list. Self-loop slots are excluded —
/// a self-loop carries no information anyway (self-delivery is a no-op).
fn undirected_slot_pairs(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for v in graph.nodes() {
        let base = graph.edge_slot_range(v).start;
        let nbrs = graph.neighbors(v);
        let mut i = 0usize;
        while i < nbrs.len() {
            let u = nbrs[i];
            let mut j = i + 1;
            while j < nbrs.len() && nbrs[j] == u {
                j += 1;
            }
            if u > v {
                let u_base = graph.edge_slot_range(u).start;
                let u_nbrs = graph.neighbors(u);
                let first = u_nbrs.partition_point(|&w| w < v);
                for k in 0..(j - i) {
                    debug_assert_eq!(u_nbrs.get(first + k), Some(&v), "asymmetric adjacency");
                    pairs.push(((base + i + k) as NodeId, (u_base + first + k) as NodeId));
                }
            }
            i = j;
        }
    }
    pairs
}

/// The effective round bound of a run: the `rounds:` budget where one is set
/// (validation guarantees it does not exceed the hard cap), the scenario's
/// hard cap otherwise.
fn round_limit(scenario: &Scenario) -> u64 {
    match scenario.stop {
        StopRule::Rounds(r) => r,
        _ => scenario.max_rounds,
    }
}

/// Picks the tracked rumor's source node according to the placement policy.
fn place_rumor(placement: StartPlacement, graph: &Graph, env_rng: &mut SmallRng) -> NodeId {
    let n = graph.num_nodes();
    match placement {
        StartPlacement::Random => env_rng.gen_range(0..n) as NodeId,
        StartPlacement::MinDegree => {
            graph.nodes().min_by_key(|&v| (graph.degree(v), v)).expect("non-empty graph")
        }
        StartPlacement::MaxDegree => graph
            .nodes()
            .max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v)))
            .expect("non-empty graph"),
    }
}

/// Materialises the injection spec into one `(round, source)` entry per
/// rumor id, drawing from the environment stream.
///
/// Draw order (part of the RNG contract documented on
/// [`schedule_environment`]): Poisson samples one arrival count per round
/// (Knuth's sampler) followed by one uniform source per arrival, in round
/// order; leftover rumors at the horizon draw their sources in id order.
/// Hotspot and explicit schedules draw nothing. All injections land strictly
/// below the effective round horizon — an event at `round >= horizon` could
/// never fire.
fn sample_injection_schedule(
    inj: &InjectionSpec,
    scenario: &Scenario,
    n: usize,
    env_rng: &mut SmallRng,
) -> Vec<(u64, NodeId)> {
    let last = round_limit(scenario).saturating_sub(1);
    match &inj.pattern {
        InjectPattern::Poisson { rate } => {
            let mut schedule = Vec::with_capacity(inj.rumors);
            let mut round = 0u64;
            while schedule.len() < inj.rumors && round < last {
                let arrivals = poisson_knuth(*rate, env_rng).min(inj.rumors - schedule.len());
                for _ in 0..arrivals {
                    schedule.push((round, env_rng.gen_range(0..n) as NodeId));
                }
                round += 1;
            }
            // Whatever the Poisson stream did not place in time is injected
            // in the last executable round, so every rumor id exists.
            while schedule.len() < inj.rumors {
                schedule.push((last, env_rng.gen_range(0..n) as NodeId));
            }
            schedule
        }
        InjectPattern::Hotspot { node, count } => {
            (0..inj.rumors).map(|m| (((m / count) as u64).min(last), *node)).collect()
        }
        InjectPattern::Explicit(entries) => {
            entries.iter().map(|e| (e.round.min(last), e.source)).collect()
        }
    }
}

/// Knuth's Poisson sampler (product of uniforms against `e^-rate`): exact,
/// dependency-free, and cheap for the small per-round rates scenarios use.
fn poisson_knuth(rate: f64, rng: &mut SmallRng) -> usize {
    let l = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            break k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{InjectionEntry, TopologySpec};
    use proptest::prelude::*;

    fn er(n: usize) -> TopologySpec {
        TopologySpec::ErdosRenyiPaper { n }
    }

    #[test]
    fn clean_scenario_completes_with_full_coverage() {
        let s = Scenario::builder("clean", er(256)).build().unwrap();
        let o = run_scenario(&s, 1, 1);
        assert!(o.completed);
        assert_eq!(o.stopped_by, StoppedBy::Complete);
        assert!(o.rounds > 0);
        assert_eq!(o.coverage, 1.0);
        assert_eq!(o.tracked_coverage, 1.0);
        assert_eq!(o.crashed, 0);
        assert_eq!(o.departed, 0);
        assert!(o.packets_per_node(256) > 0.0);
    }

    #[test]
    fn outcome_is_deterministic_in_the_seed() {
        let s = Scenario::builder("det", er(256)).loss(0.1).churn(0.1, 3, 5).build().unwrap();
        assert_eq!(run_scenario(&s, 9, 1), run_scenario(&s, 9, 1));
        assert_ne!(run_scenario(&s, 9, 1), run_scenario(&s, 10, 1));
    }

    #[test]
    fn outcome_is_identical_for_any_thread_count() {
        let s = Scenario::builder("threads", er(512)).loss(0.2).churn(0.15, 2, 4).build().unwrap();
        let single = run_scenario(&s, 3, 1);
        let multi = run_scenario(&s, 3, 4);
        assert_eq!(single, multi);
    }

    #[test]
    fn lossy_scenario_still_completes_with_more_rounds() {
        let clean = Scenario::builder("clean", er(256)).build().unwrap();
        let lossy = Scenario::builder("lossy", er(256)).loss(0.4).build().unwrap();
        let a = run_scenario(&clean, 5, 1);
        let b = run_scenario(&lossy, 5, 1);
        assert!(a.completed && b.completed);
        assert!(b.rounds >= a.rounds, "loss should not speed gossiping up");
    }

    #[test]
    fn round_budget_is_honoured_exactly() {
        let s = Scenario::builder("budget", er(128)).stop(StopRule::Rounds(7)).build().unwrap();
        let o = run_scenario(&s, 2, 1);
        assert!(o.completed);
        assert_eq!(o.stopped_by, StoppedBy::RoundBudget);
        assert_eq!(o.rounds, 7);
    }

    #[test]
    fn round_budgets_work_for_every_protocol() {
        for protocol in [ProtocolSpec::PushPull, ProtocolSpec::FastGossiping, ProtocolSpec::Memory]
        {
            let s = Scenario::builder("budget", er(128))
                .protocol(protocol)
                .stop(StopRule::Rounds(5))
                .build()
                .unwrap();
            let o = run_scenario(&s, 3, 1);
            assert_eq!(o.rounds, 5, "{}", protocol.name());
            assert_eq!(o.stopped_by, StoppedBy::RoundBudget, "{}", protocol.name());
            assert!(o.total_packets > 0, "{}", protocol.name());
        }
    }

    #[test]
    fn coverage_stop_halts_before_completion() {
        let s = Scenario::builder("cov", er(512))
            .placement(StartPlacement::MinDegree)
            .stop(StopRule::Coverage(0.5))
            .build()
            .unwrap();
        let o = run_scenario(&s, 4, 1);
        assert!(o.completed);
        assert_eq!(o.stopped_by, StoppedBy::CoverageReached);
        assert!(o.tracked_coverage >= 0.5);
        let full = Scenario::builder("full", er(512)).build().unwrap();
        assert!(o.rounds < run_scenario(&full, 4, 1).rounds);
    }

    #[test]
    fn coverage_stop_works_for_phase_protocols() {
        for protocol in [ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            let s = Scenario::builder("cov", er(256))
                .protocol(protocol)
                .stop(StopRule::Coverage(0.8))
                .build()
                .unwrap();
            let o = run_scenario(&s, 5, 1);
            assert!(o.completed, "{}", protocol.name());
            assert_eq!(o.stopped_by, StoppedBy::CoverageReached, "{}", protocol.name());
            assert!(o.tracked_coverage >= 0.8, "{}", protocol.name());
        }
    }

    #[test]
    fn coverage_target_follows_the_crash_burst_population() {
        // 192 of 256 nodes crash at round 1. Against the full population a
        // 0.95 threshold (244 knowers) would be unreachable — only 64 nodes
        // stay alive; against the crash-adjusted population the bar is
        // ⌈0.95 · 64⌉ = 61 knowers, which push-pull reaches.
        let s = Scenario::builder("crash-cov", er(256))
            .crash(1, 192)
            .stop(StopRule::Coverage(0.95))
            .build()
            .unwrap();
        let o = run_scenario(&s, 8, 1);
        assert_eq!(o.crashed, 192);
        assert_eq!(o.stopped_by, StoppedBy::CoverageReached, "rounds: {}", o.rounds);
        assert!(o.completed);
        assert!(o.rounds < s.max_rounds, "rule should fire well before the cap");
    }

    #[test]
    fn coverage_never_fires_on_a_fully_crashed_network() {
        // Every node crashes at round 1, so the alive basis drops to 0 and
        // the target becomes 0 — which must NOT count as reached: a dead
        // network has no coverage to report. The run ends at the cap.
        let s = Scenario::builder("dead", er(64))
            .crash(1, 64)
            .stop(StopRule::Coverage(0.9))
            .max_rounds(5)
            .build()
            .unwrap();
        for o in [run_scenario(&s, 3, 1), run_scenario_unpacked(&s, 3)] {
            assert_eq!(o.crashed, 64);
            assert!(!o.completed);
            assert_eq!(o.stopped_by, StoppedBy::MaxRoundsExhausted);
        }
    }

    #[test]
    fn unreachable_stop_reports_max_rounds_exhausted() {
        // One round cannot spread the rumor to 90% of 256 nodes, so a tight
        // cap exhausts without the rule firing — and says so.
        let s = Scenario::builder("tight", er(256))
            .stop(StopRule::Coverage(0.9))
            .max_rounds(1)
            .build()
            .unwrap();
        let o = run_scenario(&s, 6, 1);
        assert!(!o.completed);
        assert_eq!(o.stopped_by, StoppedBy::MaxRoundsExhausted);
        assert_eq!(o.rounds, 1);
    }

    #[test]
    fn crash_burst_reduces_final_coverage_population() {
        let s = Scenario::builder("crash", er(256))
            .crash(2, 64)
            .stop(StopRule::Rounds(30))
            .build()
            .unwrap();
        let o = run_scenario(&s, 6, 1);
        assert_eq!(o.crashed, 64);
        assert_eq!(o.departed, 0);
    }

    #[test]
    fn churn_departs_and_rejoins_nodes() {
        // Downtime longer than the residual run leaves the last wave out.
        let s = Scenario::builder("churn", er(256))
            .churn(0.2, 5, 1000)
            .stop(StopRule::Rounds(12))
            .build()
            .unwrap();
        let o = run_scenario(&s, 7, 1);
        assert!(o.departed > 0, "last churn wave should still be away");
    }

    #[test]
    fn phase_protocols_run_under_hostile_environments() {
        for protocol in [ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            let s = Scenario::builder("hostile", er(256))
                .protocol(protocol)
                .loss(0.05)
                .crash(4, 16)
                .build()
                .unwrap();
            let o = run_scenario(&s, 8, 1);
            assert!(o.rounds > 0, "{} executed no rounds", protocol.name());
            assert_eq!(o.crashed, 16);
        }
    }

    /// Satellite regression: a scenario with `loss = 0` and only a
    /// `loss-burst` must still lose packets — `is_hostile` covers the burst
    /// dimension, so the benign fast path cannot elide it, and the stepper
    /// re-derives the per-round rate.
    #[test]
    fn loss_burst_only_scenario_still_loses_packets() {
        let clean = Scenario::builder("clean", er(256)).stop(StopRule::Rounds(12)).build().unwrap();
        // A 90% burst across the whole window, on an otherwise clean spec.
        let bursty = Scenario::builder("bursty", er(256))
            .loss_burst(0, 1000, 0.9)
            .stop(StopRule::Rounds(12))
            .build()
            .unwrap();
        assert_eq!(bursty.environment.loss, 0.0);
        assert!(bursty.environment.is_hostile());
        let a = run_scenario(&clean, 5, 1);
        let b = run_scenario(&bursty, 5, 1);
        // Same round budget, but far less information spreads under the burst.
        assert!(
            b.coverage < a.coverage,
            "burst run should spread less: clean {} vs bursty {}",
            a.coverage,
            b.coverage
        );
        // And the engine really sampled loss draws: same seed, same protocol,
        // same rounds, yet the effective deliveries diverge.
        assert_eq!(a.rounds, b.rounds);
        assert!(b.total_packets > 0);
    }

    #[test]
    fn burst_windows_only_perturb_their_rounds() {
        // A burst strictly after the round budget is inert: outside the
        // window `loss_at` returns the exact base rate, so the run is
        // bit-identical to the burst-free scenario.
        let plain = Scenario::builder("plain", er(128))
            .loss(0.1)
            .stop(StopRule::Rounds(8))
            .build()
            .unwrap();
        let late_burst = Scenario::builder("plain", er(128))
            .loss(0.1)
            .loss_burst(100, 5, 0.9)
            .stop(StopRule::Rounds(8))
            .build()
            .unwrap();
        assert_eq!(run_scenario(&plain, 3, 1), run_scenario(&late_burst, 3, 1));
    }

    /// Satellite: `coverage:F` under a zone crash measures the alive
    /// population — the bar shrinks with the crashed zone and stays
    /// reachable.
    #[test]
    fn coverage_target_survives_a_zone_crash() {
        let s = Scenario::builder("zone-cov", er(256))
            .zones(4)
            .crash_in_zone(2, 64, 1) // zone 1 (nodes 64..128) fully crashes
            .stop(StopRule::Coverage(0.95))
            .build()
            .unwrap();
        let o = run_scenario(&s, 6, 1);
        assert_eq!(o.crashed, 64);
        assert_eq!(o.stopped_by, StoppedBy::CoverageReached, "rounds: {}", o.rounds);
        assert!(o.completed);
    }

    /// Zone crashes only hit the named zone: every crashed node lies inside
    /// it, and nodes outside stay alive.
    #[test]
    fn zone_crash_only_hits_the_named_zone() {
        use crate::spec::zone_members;
        let (n, zones, zone) = (256usize, 8usize, 5usize);
        let s = Scenario::builder("zone-only", er(n))
            .zones(zones)
            .crash_in_zone(1, 16, zone)
            .stop(StopRule::Rounds(4))
            .build()
            .unwrap();
        let seed = 9;
        let graph = s.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
        let mut env_rng = SmallRng::seed_from_u64(derive_seed(seed, STREAM_ENV, 0));
        let mut sim = Simulation::new(&graph, derive_seed(seed, STREAM_RUN, 0));
        schedule_environment(&s, &mut env_rng, &mut sim);
        // Step past the crash round, then inspect liveness per node.
        for _ in 0..3 {
            for v in 0..n as NodeId {
                sim.open_channel(v);
            }
            sim.metrics_mut().finish_round();
        }
        let members = zone_members(zone, n, zones);
        let crashed: Vec<NodeId> =
            (0..n as NodeId).filter(|&v| !Engine::is_alive(&sim, v)).collect();
        assert_eq!(crashed.len(), 16);
        for &v in &crashed {
            assert!(members.contains(&v), "node {v} crashed outside zone {zone}");
        }
    }

    /// Satellite: with enough Byzantine mass, completion is unreachable —
    /// a Byzantine node's own original message never spreads — and the
    /// executor reports `MaxRoundsExhausted` honestly instead of claiming
    /// the stop rule fired.
    #[test]
    fn byzantine_density_reports_max_rounds_exhausted() {
        let s = Scenario::builder("byz", er(128)).byzantine(0.2).max_rounds(40).build().unwrap();
        for o in [run_scenario(&s, 11, 1), run_scenario_unpacked(&s, 11)] {
            assert!(!o.completed);
            assert_eq!(o.stopped_by, StoppedBy::MaxRoundsExhausted);
            assert!(o.coverage < 1.0, "Byzantine originals must stay unknown");
        }
    }

    /// Edge churn never strands the stop-rule evaluation: even with most
    /// edges down every round, the run terminates via its rule or cap on
    /// both engines with identical outcomes.
    #[test]
    fn edge_churn_never_strands_stop_rule_evaluation() {
        for stop in [StopRule::Complete, StopRule::Rounds(15), StopRule::Coverage(0.7)] {
            let s = Scenario::builder("edgy", er(128))
                .edge_churn(0.9, 1)
                .stop(stop)
                .max_rounds(60)
                .build()
                .unwrap();
            let packed = run_scenario(&s, 13, 1);
            let unpacked = run_scenario_unpacked(&s, 13);
            assert_eq!(packed, unpacked);
            assert!(packed.rounds <= 60);
        }
    }

    #[test]
    fn undirected_slot_pairs_cover_each_edge_once() {
        let g = er(96).build().generate(7);
        let pairs = undirected_slot_pairs(&g);
        // Both directed slots of a pair point at each other's endpoint, and
        // no slot appears twice.
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(seen.insert(a), "slot {a} paired twice");
            assert!(seen.insert(b), "slot {b} paired twice");
        }
        // Pair count: every non-self-loop undirected edge exactly once.
        let self_loops: usize =
            g.nodes().map(|v| g.neighbors(v).iter().filter(|&&u| u == v).count()).sum();
        assert_eq!(2 * pairs.len(), g.num_edge_slots() - self_loops);
        // Endpoint consistency: slot a sits in v's range and holds u; slot b
        // sits in u's range and holds v.
        for &(a, b) in &pairs {
            let owner = |slot: NodeId| {
                g.nodes().find(|&v| g.edge_slot_range(v).contains(&(slot as usize))).unwrap()
            };
            let target = |slot: NodeId| {
                let v = owner(slot);
                let base = g.edge_slot_range(v).start;
                g.neighbors(v)[slot as usize - base]
            };
            assert_eq!(target(a), owner(b));
            assert_eq!(target(b), owner(a));
        }
    }

    #[test]
    fn adversarial_placement_tracks_the_min_degree_node() {
        let s =
            Scenario::builder("adv", er(256)).placement(StartPlacement::MinDegree).build().unwrap();
        let o = run_scenario(&s, 11, 1);
        let graph = s.topology.build().generate(derive_seed(11, STREAM_GRAPH, 0));
        let min_deg = graph.nodes().map(|v| graph.degree(v)).min().unwrap();
        assert_eq!(graph.degree(o.tracked_source), min_deg);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_progress() {
        let s = Scenario::builder("traced", er(128)).loss(0.1).build().unwrap();
        let plain = run_scenario(&s, 13, 1);
        let (traced, trace) = run_scenario_traced(&s, 13, 1);
        assert_eq!(plain, traced, "tracing must not perturb the run");
        // One record per stop-rule evaluation: rounds + the final check.
        assert_eq!(trace.rounds.len() as u64, traced.rounds + 1);
        let last = trace.rounds.last().unwrap();
        assert_eq!(last.round, traced.rounds);
        assert_eq!(last.packets, traced.total_packets);
        assert!(trace.rounds.windows(2).all(|w| w[0].fully_informed <= w[1].fully_informed));
        // Push-pull driving marks no phases.
        assert!(trace.phases.is_empty());
    }

    #[test]
    fn phase_protocol_traces_record_every_round() {
        for protocol in [ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            let s = Scenario::builder("traced", er(128)).protocol(protocol).build().unwrap();
            let plain = run_scenario(&s, 14, 1);
            let (traced, trace) = run_scenario_traced(&s, 14, 1);
            assert_eq!(plain, traced, "tracing must not perturb {}", protocol.name());
            assert_eq!(trace.rounds.len() as u64, traced.rounds + 1, "{}", protocol.name());
            let last = trace.rounds.last().unwrap();
            assert_eq!(last.round, traced.rounds);
            assert_eq!(last.packets, traced.total_packets);
            assert!(!trace.phases.is_empty(), "{} must mark phases", protocol.name());
        }
    }

    #[test]
    fn arena_run_matches_fresh_run_on_a_hostile_scenario() {
        let s = Scenario::builder("arena", er(192))
            .loss(0.15)
            .churn(0.1, 3, 4)
            .crash(5, 12)
            .placement(StartPlacement::MaxDegree)
            .build()
            .unwrap();
        let mut arena = ScenarioArena::default();
        for seed in [1u64, 21, 77] {
            let (fresh, fresh_trace) = run_scenario_traced(&s, seed, 1);
            let (reused, reused_trace) = run_scenario_traced_in(&mut arena, &s, seed, 1);
            assert_eq!(fresh, reused, "outcome diverged at seed {seed}");
            assert_eq!(fresh_trace, reused_trace, "trace diverged at seed {seed}");
            assert_eq!(run_scenario_in(&mut arena, &s, seed, 1), fresh);
        }
    }

    #[test]
    fn unpacked_oracle_agrees_on_a_hostile_scenario() {
        let s = Scenario::builder("oracle", er(192))
            .loss(0.15)
            .churn(0.1, 3, 4)
            .crash(5, 12)
            .placement(StartPlacement::MaxDegree)
            .build()
            .unwrap();
        let (packed, packed_trace) = run_scenario_traced(&s, 21, 1);
        let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&s, 21);
        assert_eq!(packed, unpacked);
        assert_eq!(packed_trace, unpacked_trace);
        assert_eq!(run_scenario_unpacked(&s, 21), unpacked);
    }

    #[test]
    fn single_node_scenario_is_trivially_complete() {
        let s = Scenario::builder("one", TopologySpec::Complete { n: 1 }).build().unwrap();
        for (o, trace) in [run_scenario_traced(&s, 1, 1), run_scenario_unpacked_traced(&s, 1)] {
            assert!(o.completed);
            assert_eq!(o.rounds, 0, "a single node has nothing to learn");
            assert_eq!(o.total_packets, 0);
            assert_eq!(o.coverage, 1.0);
            assert_eq!(o.tracked_coverage, 1.0);
            assert_eq!(trace.rounds.len(), 1, "only the initial stop-rule check runs");
        }
    }

    #[test]
    fn poisson_stream_settles_every_rumor() {
        let s = Scenario::builder("stream", er(128))
            .inject_poisson(8, 1.0)
            .stop(StopRule::AllRumors)
            .build()
            .unwrap();
        let o = run_scenario(&s, 3, 1);
        assert!(o.completed);
        assert_eq!(o.stopped_by, StoppedBy::AllRumorsDone);
        let stats = o.rumor_stats.expect("streaming run must report rumor stats");
        assert_eq!(stats.injected, 8);
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.completed_count(), 8, "all-rumors only fires once every rumor settled");
        assert!(stats.completion_rounds.iter().all(|r| r.is_some()));
        assert!(stats.inflight_high_water >= 1);
        assert!(stats.mean_completion_round() > 0.0);
        assert_eq!(o.coverage, 1.0, "every node ends up knowing all 8 rumors");
    }

    #[test]
    fn explicit_injections_complete_no_earlier_than_they_arrive() {
        let entries: Vec<InjectionEntry> = [(0u64, 0u32), (2, 5), (4, 9)]
            .iter()
            .map(|&(round, source)| InjectionEntry { round, source })
            .collect();
        let s = Scenario::builder("explicit", er(96))
            .inject_explicit(entries.clone())
            .stop(StopRule::AllRumors)
            .build()
            .unwrap();
        let o = run_scenario(&s, 11, 1);
        assert_eq!(o.stopped_by, StoppedBy::AllRumorsDone);
        let stats = o.rumor_stats.unwrap();
        for (m, entry) in entries.iter().enumerate() {
            let done = stats.completion_rounds[m].expect("explicit rumor must complete");
            assert!(
                done > entry.round,
                "rumor {m} reported complete at round {done} but arrived at {}",
                entry.round
            );
        }
        assert_eq!(o.tracked_source, entries[0].source, "rumor 0's source is the tracked one");
    }

    #[test]
    fn short_ttl_expires_slow_rumors() {
        let s = Scenario::builder("ttl", er(128))
            .inject_poisson(6, 0.5)
            .rumor_ttl(2)
            .stop(StopRule::AllRumors)
            .build()
            .unwrap();
        let o = run_scenario(&s, 7, 1);
        assert_eq!(o.stopped_by, StoppedBy::AllRumorsDone);
        let stats = o.rumor_stats.unwrap();
        assert_eq!(stats.injected, 6);
        assert!(stats.expired > 0, "a 2-round ttl must cut rumors off mid-spread");
        // Every rumor settled one way or the other: completed before its
        // expiry, or expired.
        for m in 0..6 {
            assert!(stats.completion_rounds[m].is_some() || stats.expired > 0);
        }
        assert!(stats.completed_count() < 6, "nothing spreads network-wide in 2 rounds");
    }

    #[test]
    fn streaming_outcome_is_identical_across_engines_arena_and_threads() {
        let s = Scenario::builder("stream-diff", er(160))
            .inject_poisson(10, 0.75)
            .rumor_ttl(12)
            .loss(0.1)
            .churn(0.1, 3, 4)
            .stop(StopRule::AllRumors)
            .build()
            .unwrap();
        let mut arena = ScenarioArena::default();
        for seed in [2u64, 19] {
            let (fresh, fresh_trace) = run_scenario_traced(&s, seed, 1);
            let (oracle, oracle_trace) = run_scenario_unpacked_traced(&s, seed);
            assert_eq!(fresh, oracle, "oracle diverged at seed {seed}");
            assert_eq!(fresh_trace, oracle_trace, "oracle trace diverged at seed {seed}");
            assert_eq!(run_scenario_in(&mut arena, &s, seed, 1), fresh);
            assert_eq!(run_scenario(&s, seed, 4), fresh, "thread count changed the outcome");
            assert!(fresh.rumor_stats.is_some());
        }
    }

    #[test]
    fn classic_scenarios_report_no_rumor_stats() {
        let s = Scenario::builder("classic", er(96)).build().unwrap();
        assert!(run_scenario(&s, 1, 1).rumor_stats.is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The unified stepper under [`StopRule::Complete`] must reproduce
        /// the legacy block `run_on_engine` outcome bit for bit, for every
        /// protocol: same graph, same engine seed, same rounds, packets and
        /// exchanges.
        #[test]
        fn stepped_complete_runs_equal_block_run_on_engine(
            n in 48usize..128,
            protocol_pick in 0u8..3,
            seed in 0u64..10_000,
        ) {
            let protocol = match protocol_pick {
                0 => ProtocolSpec::PushPull,
                1 => ProtocolSpec::FastGossiping,
                _ => ProtocolSpec::Memory,
            };
            let s = Scenario::builder("step-vs-block", er(n)).protocol(protocol).build().unwrap();
            let stepped = run_scenario(&s, seed, 1);

            // The block run on an identically seeded engine over the same graph.
            let graph = s.topology.build().generate(derive_seed(seed, STREAM_GRAPH, 0));
            let mut sim = Simulation::new(&graph, derive_seed(seed, STREAM_RUN, 0));
            let block = s.protocol.run_on_engine(n, &mut sim);

            prop_assert_eq!(stepped.rounds, block.rounds());
            prop_assert_eq!(stepped.total_packets, block.total_packets());
            prop_assert_eq!(stepped.total_exchanges, block.total_exchanges());
            prop_assert_eq!(stepped.completed, block.completed());
        }
    }
}
