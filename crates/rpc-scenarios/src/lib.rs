//! # rpc-scenarios
//!
//! A declarative scenario engine on top of the random phone call simulator:
//! describe *what* to simulate — topology, protocol, environment, scale,
//! stopping rule — and let the engine execute it at scale.
//!
//! * [`spec`] — the [`Scenario`] type, a builder API, and a dependency-free
//!   `key = value` text format;
//! * [`exec`] — deterministic execution of one replication, including dynamic
//!   churn (nodes departing and rejoining mid-run), per-packet message loss,
//!   crash bursts, adversarial rumor placement, and multi-rumor streaming
//!   (scheduled mid-run injection with optional TTL expiry, per-rumor
//!   completion statistics in [`ScenarioOutcome::rumor_stats`]); every
//!   protocol is driven one round at a time through
//!   [`rpc_gossip::ProtocolDriver`], so round budgets, coverage thresholds
//!   and per-round traces work uniformly, and
//!   [`ScenarioOutcome::stopped_by`] reports why each run ended;
//! * [`batch`] — the [`BatchDriver`]: a multi-threaded Monte Carlo driver
//!   fanning seeded replications across a crossbeam thread pool, with results
//!   bit-identical for any thread count;
//! * [`stats`] — min/mean/max/percentile aggregation;
//! * [`registry`] — twenty-one built-in named scenarios covering the paper's
//!   density/robustness axes plus dynamic workloads — the phase-based
//!   protocols under round budgets and coverage thresholds, the correlated
//!   hostile dimensions (failure zones, burst loss, edge churn, Byzantine
//!   senders), and multi-rumor streaming (Poisson arrivals, hotspot bursts,
//!   TTL expiry, streaming under fire);
//! * [`cells`] — the unit of sweep work: a [`CellJob`] (scenario, tuned
//!   fast-gossiping, or memory-model-with-failures) measured into named
//!   metric samples by [`run_cell`];
//! * [`sweep`] — the adaptive sweep engine: a declarative [`SweepSpec`]
//!   (grid of axes × repetition policy) executed by [`SweepRunner`] with
//!   CI-based early stopping, a persistent cell cache, and per-cell results
//!   bit-identical across thread counts, batch sizes and cache resume.
//!
//! Every layer is instrumented through the zero-cost [`rpc_obs::Observer`]
//! interface: [`run_scenario_observed`] streams engine-level events (rounds,
//! dispatch decisions, pool/arena reuse), [`SweepRunner::run_with`] streams
//! sweep lifecycle events with per-repetition wall-clock. Attaching any
//! observer never changes a result — wall-clock is read strictly outside
//! seeded code (property-pinned in `tests/obs_props.rs`).
//!
//! ```
//! use rpc_scenarios::prelude::*;
//!
//! let scenario = Scenario::builder("demo", TopologySpec::ErdosRenyiPaper { n: 128 })
//!     .loss(0.1)
//!     .churn(0.05, 4, 8)
//!     .build()
//!     .unwrap();
//! let outcome = run_scenario(&scenario, 42, 1);
//! assert!(outcome.completed);
//!
//! // The same scenario round-trips through the text format:
//! assert_eq!(Scenario::parse_str(&scenario.to_text()).unwrap(), scenario);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cells;
pub mod exec;
pub mod registry;
pub mod spec;
pub mod stats;
pub mod sweep;

pub use batch::{BatchDriver, ScenarioReport, StoppedByCounts};
pub use cells::{run_cell, run_cell_meta, CellJob, Probe, RepMeta, RepOutcome};
pub use exec::{
    coverage_target, plan_runtime, run_scenario, run_scenario_in, run_scenario_observed,
    run_scenario_observed_in, run_scenario_observed_traced, run_scenario_traced,
    run_scenario_traced_in, run_scenario_unpacked, run_scenario_unpacked_traced,
    scenario_engine_seeds, RoundTrace, RumorStats, RuntimePlan, ScenarioArena, ScenarioOutcome,
    ScenarioTrace, StoppedBy,
};
pub use spec::{
    zone_members, zone_of, ChurnSpec, CrashSpec, EdgeChurnSpec, EnvironmentSpec, InjectPattern,
    InjectionEntry, InjectionSpec, LossBurstSpec, ProtocolSpec, Scenario, ScenarioBuilder,
    ScenarioError, StartPlacement, StopRule, TopologySpec,
};
pub use stats::{summarize, SummaryStats};
pub use sweep::{
    arithmetic_failure_sweep, dense_size_sweep, failure_sweep, size_sweep, stop_index, AxisPoint,
    CellResult, CiStopRule, GridBuilder, MetricSummary, RepPolicy, SpecCell, SweepReport,
    SweepRunner, SweepSpec, DEFAULT_Z,
};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::batch::{BatchDriver, ScenarioReport, StoppedByCounts};
    pub use crate::cells::{run_cell, CellJob, Probe, RepOutcome};
    pub use crate::exec::{
        run_scenario, run_scenario_in, run_scenario_traced, run_scenario_traced_in, RumorStats,
        ScenarioArena, ScenarioOutcome, ScenarioTrace, StoppedBy,
    };
    pub use crate::registry;
    pub use crate::spec::{
        ChurnSpec, CrashSpec, EdgeChurnSpec, EnvironmentSpec, InjectPattern, InjectionEntry,
        InjectionSpec, LossBurstSpec, ProtocolSpec, Scenario, ScenarioError, StartPlacement,
        StopRule, TopologySpec,
    };
    pub use crate::stats::{summarize, SummaryStats};
    pub use crate::sweep::{
        CellResult, CiStopRule, RepPolicy, SweepReport, SweepRunner, SweepSpec,
    };
}
