//! The built-in scenario registry.
//!
//! Twenty-four named scenarios spanning the axes the paper studies (density,
//! topology, robustness) plus the dynamic workloads the scenario engine adds
//! (churn, loss, crash bursts, adversarial placement). Four pair the
//! phase-based protocols (fast-gossiping, memory) with step-granular stop
//! rules — round budgets and coverage thresholds under churn and crash
//! bursts — which the step-driven executor made possible; five exercise the
//! correlated hostile-environment dimensions (failure zones, burst loss,
//! edge churn, Byzantine senders, and all of them stacked); four are
//! multi-rumor streaming workloads (Poisson arrivals, hotspot bursts,
//! TTL expiry, and streaming under a hostile environment); the last three
//! run the single-rumor broadcast baselines (push, push-pull) and the
//! leader election under the paper's random-failure regime. All of them
//! scale with a single size parameter so the same registry serves CI smoke
//! runs and large sweeps.

use rpc_graphs::log2n;

use crate::spec::{InjectionEntry, ProtocolSpec, Scenario, StartPlacement, StopRule, TopologySpec};

/// Names of the built-in scenarios, in registry order.
pub const BUILTIN_NAMES: [&str; 24] = [
    "dense-er",
    "sparse-er",
    "random-regular",
    "complete",
    "churn-heavy",
    "lossy",
    "crash-burst",
    "adversarial-start",
    "fast-round-budget",
    "fast-coverage-crash",
    "memory-round-budget",
    "memory-coverage-churn",
    "zone-crash",
    "loss-burst",
    "edge-churn",
    "byzantine-drop",
    "hostile-all",
    "poisson-stream",
    "hotspot-burst",
    "ttl-expiry",
    "hostile-stream",
    "broadcast-push",
    "broadcast-push-pull",
    "election-failures",
];

/// Builds the registry for graphs of `n` nodes (`n ≥ 16`; smaller values are
/// clamped so every scenario stays well-formed).
pub fn builtin(n: usize) -> Vec<Scenario> {
    let n = n.max(16);
    let log2 = log2n(n);
    let paper_degree = log2 * log2; // the paper's expected degree log² n
    let dense_degree = (4.0 * paper_degree).min(n as f64 - 1.0);
    let regular_degree = even_regular_degree(n, paper_degree.round() as usize);
    let crash_count = n / 8;
    let round_budget = (4.0 * log2).ceil() as u64;

    let build = |scenario: Result<Scenario, crate::spec::ScenarioError>| {
        scenario.expect("builtin scenario must validate")
    };

    vec![
        // Density above the paper's G(n, log² n / n) working point: gossiping
        // on a graph four times denser behaves almost like on K_n.
        build(
            Scenario::builder(
                "dense-er",
                TopologySpec::ErdosRenyiDegree { n, degree: dense_degree },
            )
            .build(),
        ),
        // The paper's density threshold regime: expected degree log² n.
        build(Scenario::builder("sparse-er", TopologySpec::ErdosRenyiPaper { n }).build()),
        // Lemma 6 regime: random regular graphs, driven by Algorithm 1.
        build(
            Scenario::builder(
                "random-regular",
                TopologySpec::RandomRegular { n, degree: regular_degree },
            )
            .protocol(ProtocolSpec::FastGossiping)
            .build(),
        ),
        // The classical baseline topology, driven by Algorithm 2.
        build(
            Scenario::builder("complete", TopologySpec::Complete { n })
                .protocol(ProtocolSpec::Memory)
                .build(),
        ),
        // Heavy membership churn: every 4 rounds 10% of the nodes depart and
        // rejoin 8 rounds later with their state intact.
        build(
            Scenario::builder("churn-heavy", TopologySpec::ErdosRenyiPaper { n })
                .churn(0.1, 4, 8)
                .build(),
        ),
        // A quarter of all packets vanish in transit.
        build(Scenario::builder("lossy", TopologySpec::ErdosRenyiPaper { n }).loss(0.25).build()),
        // An eighth of the network crashes at round 3 and never recovers; the
        // run is measured over a fixed round budget since crashed nodes take
        // their unsent messages down with them.
        build(
            Scenario::builder("crash-burst", TopologySpec::ErdosRenyiPaper { n })
                .crash(3, crash_count)
                .stop(StopRule::Rounds(round_budget))
                .build(),
        ),
        // The rumor starts at the minimum-degree node — the worst placement —
        // and the run ends once 99% of the network has heard it.
        build(
            Scenario::builder("adversarial-start", TopologySpec::ErdosRenyiPaper { n })
                .placement(StartPlacement::MinDegree)
                .stop(StopRule::Coverage(0.99))
                .build(),
        ),
        // Algorithm 1 under heavy churn on a fixed round budget: how far do
        // the distribution and random-walk phases get in 4 log n rounds when
        // 10% of the network keeps blinking in and out?
        build(
            Scenario::builder("fast-round-budget", TopologySpec::ErdosRenyiPaper { n })
                .protocol(ProtocolSpec::FastGossiping)
                .churn(0.1, 4, 8)
                .stop(StopRule::Rounds(round_budget))
                .build(),
        ),
        // Algorithm 1 racing a coverage threshold after an early crash burst;
        // the 90% bar is measured against the crash-adjusted population, so
        // the rule stays reachable.
        build(
            Scenario::builder("fast-coverage-crash", TopologySpec::ErdosRenyiPaper { n })
                .protocol(ProtocolSpec::FastGossiping)
                .crash(3, crash_count)
                .stop(StopRule::Coverage(0.9))
                .build(),
        ),
        // Algorithm 2 on a lossy network with a fixed round budget: the
        // leader tree is built under packet loss and the budget cuts the run
        // mid-schedule.
        build(
            Scenario::builder("memory-round-budget", TopologySpec::ErdosRenyiPaper { n })
                .protocol(ProtocolSpec::Memory)
                .loss(0.05)
                .stop(StopRule::Rounds(round_budget))
                .build(),
        ),
        // Algorithm 2 under churn, stopping once 90% of the network knows
        // the rumor — the closing broadcast usually fires the rule before the
        // schedule ends.
        build(
            Scenario::builder("memory-coverage-churn", TopologySpec::ErdosRenyiPaper { n })
                .protocol(ProtocolSpec::Memory)
                .churn(0.05, 6, 6)
                .stop(StopRule::Coverage(0.9))
                .build(),
        ),
        // A whole failure domain (one of 8 zones, an eighth of the network)
        // crashes together at round 3 — the rack-loss version of crash-burst.
        // Coverage is measured against the crash-adjusted population, so the
        // 90% bar stays reachable.
        build(
            Scenario::builder("zone-crash", TopologySpec::ErdosRenyiPaper { n })
                .zones(8)
                .crash_in_zone(3, zone_size(n, 8), 2)
                .stop(StopRule::Coverage(0.9))
                .build(),
        ),
        // Correlated loss: a clean base rate with two heavy loss episodes —
        // 50% loss for 4 rounds early on, a 30% aftershock later.
        build(
            Scenario::builder("loss-burst", TopologySpec::ErdosRenyiPaper { n })
                .loss_burst(2, 4, 0.5)
                .loss_burst(10, 3, 0.3)
                .build(),
        ),
        // Dynamic topology: every 3 rounds a fresh random 20% of the edges
        // goes down (the previous outage heals), so the graph keeps mutating
        // under the protocol.
        build(
            Scenario::builder("edge-churn", TopologySpec::ErdosRenyiPaper { n })
                .edge_churn(0.2, 3)
                .build(),
        ),
        // A tenth of the nodes silently drop instead of forwarding. Their
        // own original messages can never spread, so completion is
        // unreachable by construction — the run is measured over a fixed
        // round budget instead.
        build(
            Scenario::builder("byzantine-drop", TopologySpec::ErdosRenyiPaper { n })
                .byzantine(0.1)
                .stop(StopRule::Rounds(round_budget))
                .build(),
        ),
        // Every hostile dimension stacked: zoned churn waves, a zone crash,
        // burst loss over a lossy base, edge churn and Byzantine senders,
        // measured over a fixed round budget.
        build(
            Scenario::builder("hostile-all", TopologySpec::ErdosRenyiPaper { n })
                .loss(0.05)
                .loss_burst(4, 3, 0.4)
                .zones(8)
                .churn(0.2, 4, 6)
                .crash_in_zone(5, zone_size(n, 8) / 2, 5)
                .edge_churn(0.1, 4)
                .byzantine(0.05)
                .stop(StopRule::Rounds(2 * round_budget))
                .build(),
        ),
        // Streaming baseline: sixteen rumors arrive as a Poisson process
        // (about one per round) at uniform sources; the run ends once every
        // rumor has reached the whole network.
        build(
            Scenario::builder("poisson-stream", TopologySpec::ErdosRenyiPaper { n })
                .inject_poisson(16, 1.0)
                .stop(StopRule::AllRumors)
                .build(),
        ),
        // Hotspot workload: a single producer (node 0) emits twelve rumors
        // in bursts of four per round — the skewed-source contrast to the
        // uniform Poisson stream.
        build(
            Scenario::builder("hotspot-burst", TopologySpec::ErdosRenyiPaper { n })
                .inject_hotspot(12, 0, 4)
                .stop(StopRule::AllRumors)
                .build(),
        ),
        // Expiring rumors: eight Poisson arrivals that each live only log n
        // rounds, measured over a fixed budget — late arrivals get cut off
        // mid-spread, so per-rumor completion histograms stay interesting.
        build(
            Scenario::builder("ttl-expiry", TopologySpec::ErdosRenyiPaper { n })
                .inject_poisson(8, 0.5)
                .rumor_ttl(log2.ceil() as u64)
                .stop(StopRule::Rounds(2 * round_budget))
                .build(),
        ),
        // Streaming under fire: Poisson arrivals racing burst loss, zoned
        // churn and Byzantine senders over a fixed round budget.
        build(
            Scenario::builder("hostile-stream", TopologySpec::ErdosRenyiPaper { n })
                .inject_poisson(8, 0.75)
                .loss(0.05)
                .loss_burst(4, 3, 0.4)
                .zones(8)
                .churn(0.1, 4, 6)
                .byzantine(0.05)
                .stop(StopRule::Rounds(2 * round_budget))
                .build(),
        ),
        // Single-rumor push broadcast (Pittel's baseline): one rumor injected
        // at node 0 in round 0, pushed by informed nodes until everyone has
        // heard it.
        build(
            Scenario::builder("broadcast-push", TopologySpec::ErdosRenyiPaper { n })
                .protocol(ProtocolSpec::BroadcastPush)
                .inject_explicit(vec![InjectionEntry { round: 0, source: 0 }])
                .stop(StopRule::AllRumors)
                .build(),
        ),
        // Single-rumor push-pull broadcast (Karp et al.): the pull direction
        // closes the tail exponentially faster than pure push.
        build(
            Scenario::builder("broadcast-push-pull", TopologySpec::ErdosRenyiPaper { n })
                .protocol(ProtocolSpec::BroadcastPushPull)
                .inject_explicit(vec![InjectionEntry { round: 0, source: 0 }])
                .stop(StopRule::AllRumors)
                .build(),
        ),
        // Algorithm 3 under Lemma 19's failure regime: about n^0.55 nodes
        // crash at round 0 (before candidacy), and the survivors must still
        // elect a unique, universally known leader.
        build(
            Scenario::builder("election-failures", TopologySpec::ErdosRenyiPaper { n })
                .protocol(ProtocolSpec::LeaderElection)
                .crash(0, election_failures(n))
                .build(),
        ),
    ]
}

/// The `n^{ε'}` random-failure count of the election scenario (ε' = 0.55,
/// matching the Lemma 19 regression tests).
fn election_failures(n: usize) -> usize {
    (n as f64).powf(0.55).round() as usize
}

/// Size of the smallest zone when `n` nodes split into `zones` contiguous
/// blocks — a safe crash count for any zone index.
fn zone_size(n: usize, zones: usize) -> usize {
    n / zones
}

/// Looks a built-in scenario up by name at size `n`.
pub fn find(name: &str, n: usize) -> Option<Scenario> {
    builtin(n).into_iter().find(|s| s.name == name)
}

/// A degree `d ≈ wanted` that makes an `n`-node regular graph well-formed:
/// `n * d` even and `d < n`.
fn even_regular_degree(n: usize, wanted: usize) -> usize {
    let mut d = wanted.clamp(2, n - 1);
    if n % 2 == 1 && d % 2 == 1 {
        d += 1;
    }
    if d >= n {
        d = n - 1;
        if n % 2 == 1 && d % 2 == 1 {
            d -= 1;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_twenty_four_uniquely_named_scenarios() {
        let scenarios = builtin(1024);
        assert_eq!(scenarios.len(), 24);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, BUILTIN_NAMES);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    fn broadcast_and_election_scenarios_are_wired_correctly() {
        for (name, protocol) in [
            ("broadcast-push", ProtocolSpec::BroadcastPush),
            ("broadcast-push-pull", ProtocolSpec::BroadcastPushPull),
        ] {
            let s = find(name, 256).unwrap();
            assert_eq!(s.protocol, protocol);
            let inj = s.injection.as_ref().expect("broadcast carries an injection");
            assert_eq!(inj.rumors, 1);
            assert_eq!(s.stop, StopRule::AllRumors);
        }
        let election = find("election-failures", 1024).unwrap();
        assert_eq!(election.protocol, ProtocolSpec::LeaderElection);
        let crash = election.environment.crash.expect("election carries a crash burst");
        assert_eq!(crash.round, 0);
        assert_eq!(crash.count, election_failures(1024));
        assert!(crash.count >= 16 && crash.count < 1024 / 8);
        assert_eq!(election.stop, StopRule::Complete);
    }

    #[test]
    fn hostile_dimension_scenarios_carry_their_dimensions() {
        let zone_crash = find("zone-crash", 256).unwrap();
        assert_eq!(zone_crash.environment.zones, Some(8));
        assert_eq!(zone_crash.environment.crash.unwrap().zone, Some(2));
        let bursts = find("loss-burst", 256).unwrap();
        assert_eq!(bursts.environment.loss, 0.0);
        assert_eq!(bursts.environment.loss_bursts.len(), 2);
        assert!(find("edge-churn", 256).unwrap().environment.edge_churn.is_some());
        assert_eq!(find("byzantine-drop", 256).unwrap().environment.byzantine, 0.1);
        let all = find("hostile-all", 256).unwrap().environment;
        assert!(
            !all.loss_bursts.is_empty()
                && all.churn.is_some()
                && all.crash.is_some()
                && all.zones.is_some()
                && all.edge_churn.is_some()
                && all.byzantine > 0.0,
            "hostile-all must stack every dimension"
        );
    }

    #[test]
    fn registry_covers_every_protocol_and_stop_rule() {
        use crate::spec::{ProtocolSpec, StopRule};
        let scenarios = builtin(256);
        for protocol in [ProtocolSpec::PushPull, ProtocolSpec::FastGossiping, ProtocolSpec::Memory]
        {
            for rule_name in ["complete", "rounds", "coverage"] {
                let covered = scenarios.iter().any(|s| {
                    s.protocol == protocol
                        && rule_name
                            == match s.stop {
                                StopRule::Complete => "complete",
                                StopRule::Rounds(_) => "rounds",
                                StopRule::Coverage(_) => "coverage",
                                StopRule::AllRumors => "all-rumors",
                            }
                });
                assert!(covered, "no registry scenario runs {} with {rule_name}", protocol.name());
            }
        }
    }

    #[test]
    fn streaming_scenarios_carry_injection_specs() {
        use crate::spec::InjectPattern;
        let stream = find("poisson-stream", 256).unwrap();
        let inj = stream.injection.as_ref().unwrap();
        assert_eq!(inj.rumors, 16);
        assert!(matches!(inj.pattern, InjectPattern::Poisson { .. }));
        assert_eq!(stream.stop, StopRule::AllRumors);
        let hotspot = find("hotspot-burst", 256).unwrap();
        assert!(matches!(
            hotspot.injection.as_ref().unwrap().pattern,
            InjectPattern::Hotspot { node: 0, count: 4 }
        ));
        let ttl = find("ttl-expiry", 256).unwrap();
        assert!(ttl.injection.as_ref().unwrap().ttl.is_some());
        let hostile = find("hostile-stream", 256).unwrap();
        assert!(
            hostile.injection.is_some()
                && !hostile.environment.loss_bursts.is_empty()
                && hostile.environment.churn.is_some()
                && hostile.environment.byzantine > 0.0,
            "hostile-stream must compose injection with hostile dimensions"
        );
    }

    #[test]
    fn every_builtin_scenario_is_buildable_at_various_sizes() {
        for n in [16, 100, 255, 1024] {
            for scenario in builtin(n) {
                assert!(scenario.num_nodes() >= 16);
                // The topology must instantiate without panicking.
                let _ = scenario.topology.build();
            }
        }
    }

    #[test]
    fn find_returns_named_scenarios() {
        assert!(find("churn-heavy", 256).is_some());
        assert!(find("no-such-scenario", 256).is_none());
        assert_eq!(find("lossy", 256).unwrap().environment.loss, 0.25);
    }

    #[test]
    fn even_regular_degree_is_well_formed() {
        for n in [16usize, 17, 100, 101, 1023] {
            for wanted in [2usize, 5, 50, 2000] {
                let d = even_regular_degree(n, wanted);
                assert!(d < n, "d={d} n={n}");
                assert_eq!(n * d % 2, 0, "n*d odd for n={n} wanted={wanted}");
            }
        }
    }

    #[test]
    fn registry_text_roundtrips() {
        for scenario in builtin(256) {
            let reparsed = Scenario::parse_str(&scenario.to_text()).unwrap();
            assert_eq!(scenario, reparsed);
        }
    }
}
