//! Declarative scenario specifications.
//!
//! A [`Scenario`] bundles everything one simulated workload needs: a
//! [`TopologySpec`] (which graph model at which scale), a [`ProtocolSpec`]
//! (which gossiping algorithm), an [`EnvironmentSpec`] (message loss, loss
//! bursts, churn, crash bursts, failure zones, edge churn, Byzantine
//! senders, adversarial start placement), an optional [`InjectionSpec`]
//! (multi-rumor streaming workloads: how many rumors, when and where they
//! appear, how long they live), and a [`StopRule`]. Scenarios are built
//! either with the builder API ([`Scenario::builder`]) or parsed from a
//! simple `key = value` text format ([`Scenario::parse_str`]) that needs no
//! external dependencies.
//!
//! ## Text format
//!
//! One scenario per block, blocks separated by blank lines, `#` starts a
//! comment:
//!
//! ```text
//! name = churn-heavy
//! topology = erdos-renyi      # erdos-renyi | random-regular | complete
//! n = 1024
//! degree = 100                # optional; omitted = paper density log^2 n
//! protocol = push-pull        # push-pull | fast-gossiping | memory |
//!                             # broadcast-push | broadcast-push-pull |
//!                             # leader-election
//! loss = 0.05                 # per-packet loss probability, default 0
//! loss-burst = 4:6:0.5        # start:len:prob, repeatable, default none
//! churn = 0.1:4:8             # fraction:period:downtime, default none
//! crash = 3:64                # round:count[@zone], default none
//! zones = 8                   # number of failure zones, default none
//! edge-churn = 0.2:4          # fraction:period, default none
//! byzantine = 0.1             # fraction of silently-dropping nodes, default 0
//! rumors = 16                 # streaming rumor count, default none (classic)
//! inject = poisson:1.5        # poisson:rate | hotspot:node:count |
//!                             # round:source (repeatable), default poisson:1
//! rumor-ttl = 32              # rounds until global expiry, default none
//! start = min-degree          # random | min-degree | max-degree
//! stop = complete             # complete | rounds:N | coverage:F | all-rumors
//! max-rounds = 400            # safety cap, default 64 * log2(n) + 64
//! ```
//!
//! ### Formal grammar
//!
//! The format, in EBNF (terminals quoted; `*` is repetition, `?` is option,
//! `|` is alternation):
//!
//! ```text
//! file       = block ( blank-line+ block )* ;
//! block      = line+ ;
//! line       = ( entry )? comment? newline ;
//! entry      = key ws? "=" ws? value ;
//! comment    = "#" ⟨any characters except newline⟩ ;
//! blank-line = ws? comment? newline ;          (* comment-only lines do NOT
//!                                                 separate blocks *)
//!
//! key        = "name" | "topology" | "n" | "degree" | "protocol" | "loss"
//!            | "loss-burst" | "churn" | "crash" | "zones" | "edge-churn"
//!            | "byzantine" | "rumors" | "inject" | "rumor-ttl" | "start"
//!            | "stop" | "max-rounds" ;
//!
//! value      =                                 (* per key: *)
//!     ⟨name⟩     : string                      (* non-empty after trimming;
//!                                                 must not contain "#" or
//!                                                 line breaks *)
//!   | ⟨topology⟩ : "erdos-renyi" | "random-regular" | "complete"
//!   | ⟨n⟩        : uint                        (* required, > 0 *)
//!   | ⟨degree⟩   : float                       (* for random-regular: a
//!                                                 positive integer *)
//!   | ⟨protocol⟩ : "push-pull" | "fast-gossiping" | "memory"
//!                | "broadcast-push" | "broadcast-push-pull"
//!                | "leader-election"
//!   | ⟨loss⟩     : float                       (* in [0, 1) *)
//!   | ⟨loss-burst⟩ : uint ":" uint ":" float   (* start:len:prob; the only
//!                                                 repeatable key — each
//!                                                 occurrence appends one
//!                                                 burst *)
//!   | ⟨churn⟩    : float ":" uint ":" uint     (* fraction:period:downtime *)
//!   | ⟨crash⟩    : uint ":" uint ( "@" uint )? (* round:count[@zone]; "@"
//!                                                 confines the burst to one
//!                                                 failure zone and requires
//!                                                 the "zones" key *)
//!   | ⟨zones⟩    : uint                        (* failure domains, in
//!                                                 [1, n] *)
//!   | ⟨edge-churn⟩ : float ":" uint            (* fraction:period *)
//!   | ⟨byzantine⟩ : float                      (* in [0, 1] *)
//!   | ⟨rumors⟩   : uint                        (* ≥ 1; decouples the rumor
//!                                                 space from n and switches
//!                                                 the run to streaming mode *)
//!   | ⟨inject⟩   : "poisson:" float            (* mean arrivals per round *)
//!                | "hotspot:" uint ":" uint    (* node:count — count rumors
//!                                                 per round at one node *)
//!                | uint ":" uint               (* round:source — repeatable
//!                                                 like loss-burst; each
//!                                                 occurrence appends one
//!                                                 explicit entry; explicit
//!                                                 entries cannot be mixed
//!                                                 with the sampled forms *)
//!   | ⟨rumor-ttl⟩ : uint                       (* ≥ 1; rounds from injection
//!                                                 to global expiry *)
//!   | ⟨start⟩    : "random" | "min-degree" | "max-degree"
//!   | ⟨stop⟩     : "complete" | "rounds:" uint | "coverage:" float
//!                | "all-rumors"
//!   | ⟨max-rounds⟩ : uint ;                    (* ≥ 1 *)
//! ```
//!
//! Whitespace around keys and values is trimmed; everything from `#` to the
//! end of the line is ignored. `name` and `n` are required, every other key
//! is optional and defaults as documented above; duplicate keys are allowed
//! and the last occurrence wins — except `loss-burst`, which is repeatable
//! and accumulates one [`LossBurstSpec`] per occurrence (in file order).
//! Keys outside the list are rejected —
//! [`Scenario::parse_str`] collects **all** unrecognized keys of a block and
//! reports them in one [`ScenarioError::Parse`] so a typo-ridden file is
//! fixed in a single round trip. Semantic constraints (value ranges, a
//! `rounds:` budget within the `max-rounds` cap, even `n · degree` for
//! regular graphs, …) are enforced by [`ScenarioBuilder::build`] after
//! parsing and reported as [`ScenarioError::Invalid`]. Every stop rule and
//! an explicit `max-rounds` cap are valid for **every** protocol: the
//! executor drives all of them one round at a time through
//! [`rpc_gossip::ProtocolDriver`].

use std::fmt;

use rpc_gossip::{FastGossiping, GossipAlgorithm, MemoryGossip, PushPullGossip};
use rpc_graphs::log2n;
use rpc_graphs::prelude::*;

/// Errors produced while building or parsing a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The text format could not be parsed; the message names the offending
    /// key or line.
    Parse(String),
    /// The specification is structurally valid but semantically inconsistent
    /// (e.g. a coverage stop rule on a phase-based protocol).
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(msg) => write!(f, "scenario parse error: {msg}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which graph model a scenario runs on.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// Erdős–Rényi `G(n, p)` at the paper's density `p = log² n / n`.
    ErdosRenyiPaper {
        /// Number of nodes.
        n: usize,
    },
    /// Erdős–Rényi with an explicit expected degree.
    ErdosRenyiDegree {
        /// Number of nodes.
        n: usize,
        /// Expected degree `p (n - 1)`.
        degree: f64,
    },
    /// Random `d`-regular simple graph.
    RandomRegular {
        /// Number of nodes.
        n: usize,
        /// Degree of every node (`n * degree` must be even).
        degree: usize,
    },
    /// The complete graph `K_n`.
    Complete {
        /// Number of nodes.
        n: usize,
    },
}

impl TopologySpec {
    /// Number of nodes of the generated graphs.
    pub fn num_nodes(&self) -> usize {
        match *self {
            TopologySpec::ErdosRenyiPaper { n }
            | TopologySpec::ErdosRenyiDegree { n, .. }
            | TopologySpec::RandomRegular { n, .. }
            | TopologySpec::Complete { n } => n,
        }
    }

    /// Instantiates the corresponding graph generator.
    pub fn build(&self) -> Box<dyn GraphGenerator> {
        match *self {
            TopologySpec::ErdosRenyiPaper { n } => Box::new(ErdosRenyi::paper_density(n)),
            TopologySpec::ErdosRenyiDegree { n, degree } => {
                Box::new(ErdosRenyi::with_expected_degree(n, degree))
            }
            TopologySpec::RandomRegular { n, degree } => Box::new(RandomRegular::new(n, degree)),
            TopologySpec::Complete { n } => Box::new(CompleteGraph::new(n)),
        }
    }

    /// Short label for reports. Comma-free so the labels survive the plain
    /// (unquoted) CSV rendering of experiment tables.
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::ErdosRenyiPaper { n } => format!("er-paper(n={n})"),
            TopologySpec::ErdosRenyiDegree { n, degree } => format!("er(n={n} d={degree:.0})"),
            TopologySpec::RandomRegular { n, degree } => format!("regular(n={n} d={degree})"),
            TopologySpec::Complete { n } => format!("complete(n={n})"),
        }
    }
}

/// Which gossiping protocol a scenario runs. Every protocol supports every
/// [`StopRule`] — the executor drives each of them one round at a time
/// through its [`rpc_gossip::ProtocolDriver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProtocolSpec {
    /// The simple push-pull baseline (Algorithm 4).
    #[default]
    PushPull,
    /// Algorithm 1 (distribution, random walks, broadcast).
    FastGossiping,
    /// Algorithm 2 (memory model: leader tree, gather, broadcast).
    Memory,
    /// The push broadcast baseline (Pittel): informed nodes push the rumor.
    /// Requires a streaming injection — broadcasting spreads injected rumors,
    /// not the classic one-rumor-per-node start.
    BroadcastPush,
    /// The push-pull broadcast baseline (Karp et al.). Requires a streaming
    /// injection, like [`Self::BroadcastPush`].
    BroadcastPushPull,
    /// Algorithm 3 (randomized leader election in the memory model). Success
    /// is a unique universally known leader, reported through
    /// [`rpc_gossip::ElectionSummary`] on the scenario outcome.
    LeaderElection,
}

impl ProtocolSpec {
    /// Report label, matching [`GossipAlgorithm::name`] for the gossiping
    /// protocols and the driver name for the rest.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::PushPull => "push-pull",
            ProtocolSpec::FastGossiping => "fast-gossiping",
            ProtocolSpec::Memory => "memory",
            ProtocolSpec::BroadcastPush => "broadcast-push",
            ProtocolSpec::BroadcastPushPull => "broadcast-push-pull",
            ProtocolSpec::LeaderElection => "leader-election",
        }
    }

    /// Whether the protocol runs on the streaming rumor engine (and may thus
    /// carry an injection spec): push-pull and the broadcast baselines spread
    /// whatever rumors exist, while the phase-based protocols and the leader
    /// election assume the classic one-rumor-per-node start.
    pub fn supports_streaming(&self) -> bool {
        matches!(
            self,
            ProtocolSpec::PushPull | ProtocolSpec::BroadcastPush | ProtocolSpec::BroadcastPushPull
        )
    }

    /// Whether the protocol is a single/streamed-rumor broadcast baseline,
    /// which *requires* an injection spec (there is no classic start to fall
    /// back to).
    pub fn is_broadcast(&self) -> bool {
        matches!(self, ProtocolSpec::BroadcastPush | ProtocolSpec::BroadcastPushPull)
    }

    /// Instantiates the algorithm with its paper constants for `n` nodes.
    ///
    /// # Panics
    ///
    /// For the broadcast and leader-election protocols, which have no
    /// [`GossipAlgorithm`] block entry point — they exist only as
    /// [`rpc_gossip::ProtocolDriver`]s and are always dispatched through the
    /// scenario executor.
    pub fn build(&self, n: usize) -> Box<dyn GossipAlgorithm> {
        match self {
            ProtocolSpec::PushPull => Box::new(PushPullGossip::default()),
            ProtocolSpec::FastGossiping => Box::new(FastGossiping::paper(n)),
            ProtocolSpec::Memory => Box::new(MemoryGossip::paper(n)),
            other => panic!(
                "{} has no block GossipAlgorithm entry point; run it through \
                 the scenario executor's driver dispatch",
                other.name()
            ),
        }
    }

    /// Runs the algorithm (instantiated exactly as [`Self::build`] does) on
    /// any [`rpc_engine::Engine`] — the engine-generic entry point the
    /// stepped-vs-block equivalence suite uses, kept next to `build` so the
    /// protocol-to-configuration mapping exists in one place.
    ///
    /// # Panics
    ///
    /// For the broadcast and leader-election protocols, like [`Self::build`].
    pub fn run_on_engine<E: rpc_engine::Engine>(
        &self,
        n: usize,
        sim: &mut E,
    ) -> rpc_gossip::GossipOutcome {
        match self {
            ProtocolSpec::PushPull => PushPullGossip::default().run_on_engine(sim),
            ProtocolSpec::FastGossiping => FastGossiping::paper(n).run_on_engine(sim),
            ProtocolSpec::Memory => MemoryGossip::paper(n).run_on_engine(sim),
            other => panic!(
                "{} has no block run_on_engine entry point; run it through \
                 the scenario executor's driver dispatch",
                other.name()
            ),
        }
    }
}

/// Periodic churn: every `period` rounds a fresh uniformly random set of
/// `fraction · n` nodes departs and rejoins `downtime` rounds later with its
/// state intact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Fraction of nodes departing per wave, in `[0, 1]`.
    pub fraction: f64,
    /// Rounds between consecutive waves (≥ 1).
    pub period: u64,
    /// Rounds a departed node stays out (≥ 1).
    pub downtime: u64,
}

/// A one-shot crash burst: `count` uniformly random nodes crash at the start
/// of `round` and never recover (the paper's failure model — crashed nodes
/// remain addressable but neither transmit nor store). With a `zone`, the
/// burst is correlated: all crashing nodes are drawn from that failure zone
/// (see [`EnvironmentSpec::zones`] and [`zone_of`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Round at which the burst fires.
    pub round: u64,
    /// Number of crashing nodes.
    pub count: usize,
    /// Failure zone the crashing nodes are drawn from; `None` samples from
    /// the whole population. Requires [`EnvironmentSpec::zones`].
    pub zone: Option<usize>,
}

/// A window of elevated message loss: during rounds `start ..= start+len-1`
/// every packet is additionally dropped with probability `prob`, layered
/// multiplicatively over the base rate and any other overlapping bursts (a
/// packet survives a round only if it survives every active loss source; see
/// [`EnvironmentSpec::loss_at`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossBurstSpec {
    /// First round of the burst.
    pub start: u64,
    /// Number of rounds the burst lasts (≥ 1).
    pub len: u64,
    /// Additional per-packet loss probability while active, in `[0, 1)`.
    pub prob: f64,
}

impl LossBurstSpec {
    /// Whether the burst is active at `round`.
    pub fn active_at(&self, round: u64) -> bool {
        round >= self.start && round - self.start < self.len
    }
}

/// Periodic edge churn (a dynamic topology): every `period` rounds a fresh
/// uniformly random set of `fraction · m` undirected edges goes down,
/// replacing the previous wave's set (edges from earlier waves come back
/// up). A down edge cannot be chosen as a communication channel in either
/// direction, but delivery on already-open channels is unaffected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeChurnSpec {
    /// Fraction of undirected edges down per wave, in `[0, 1]`.
    pub fraction: f64,
    /// Rounds between consecutive waves (≥ 1).
    pub period: u64,
}

/// One explicit injection: a rumor appears at `source` at the start of
/// `round`. Explicit entries are indexed by position — the `m`-th entry of
/// [`InjectPattern::Explicit`] injects rumor id `m`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectionEntry {
    /// Round at whose boundary the rumor is injected.
    pub round: u64,
    /// Node the rumor first appears at.
    pub source: NodeId,
}

/// When and where streaming rumors enter the network. The sampled forms
/// (Poisson, hotspot) draw their schedules from the seeded environment RNG
/// at prepare time — after the tracked-rumor placement draw, per the
/// documented draw-ordering contract — so every engine replays the identical
/// schedule without drawing anything itself.
#[derive(Clone, Debug, PartialEq)]
pub enum InjectPattern {
    /// Independent arrivals: each round injects `Poisson(rate)` new rumors
    /// (Knuth's product-of-uniforms sampler) at uniformly random sources,
    /// until all `rumors` ids are spent; leftovers are injected in the last
    /// round before the `max-rounds` horizon.
    Poisson {
        /// Mean arrivals per round, positive and finite.
        rate: f64,
    },
    /// A bursty producer: `count` rumors per round, all at one fixed node,
    /// starting at round 0, until all ids are spent.
    Hotspot {
        /// The producing node.
        node: NodeId,
        /// Rumors injected per round (≥ 1).
        count: usize,
    },
    /// A fully spelled-out schedule: exactly one entry per rumor id.
    Explicit(Vec<InjectionEntry>),
}

/// A multi-rumor streaming workload: `rumors` message ids (the engine's
/// message universe, decoupled from the node count) entering the network
/// per `pattern`, each optionally expiring globally `ttl` rounds after its
/// injection.
#[derive(Clone, Debug, PartialEq)]
pub struct InjectionSpec {
    /// Size of the rumor space (≥ 1). Streaming runs start with *empty*
    /// node states; every rumor enters via injection.
    pub rumors: usize,
    /// When and where rumors are injected.
    pub pattern: InjectPattern,
    /// Rounds from a rumor's injection to its global expiry, if any. An
    /// expired rumor is removed from every node and never reappears.
    pub ttl: Option<u64>,
}

/// Where the tracked rumor starts. The scenario engine follows one original
/// message ("the rumor") for its coverage metric; adversarial placement puts
/// it where spreading is hardest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StartPlacement {
    /// A uniformly random node.
    #[default]
    Random,
    /// The minimum-degree node (worst case for push-based spreading).
    MinDegree,
    /// The maximum-degree node.
    MaxDegree,
}

impl StartPlacement {
    /// Report label.
    pub fn name(&self) -> &'static str {
        match self {
            StartPlacement::Random => "random",
            StartPlacement::MinDegree => "min-degree",
            StartPlacement::MaxDegree => "max-degree",
        }
    }
}

/// Environmental conditions of a scenario run.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct EnvironmentSpec {
    /// Per-packet message-loss probability in `[0, 1)`.
    pub loss: f64,
    /// Windows of elevated loss layered over the base rate, if any.
    pub loss_bursts: Vec<LossBurstSpec>,
    /// Periodic churn, if any.
    pub churn: Option<ChurnSpec>,
    /// One-shot crash burst, if any.
    pub crash: Option<CrashSpec>,
    /// Number of failure zones the nodes are partitioned into; `None`
    /// disables zone-correlated failures. With zones, churn waves hit one
    /// uniformly drawn zone per wave and a crash burst can be confined to a
    /// named zone via [`CrashSpec::zone`]. The partition is [`zone_of`].
    pub zones: Option<usize>,
    /// Periodic edge churn (dynamic topology), if any.
    pub edge_churn: Option<EdgeChurnSpec>,
    /// Fraction of Byzantine nodes in `[0, 1]`: a seeded uniformly random
    /// set of `byzantine · n` nodes silently drops every packet it should
    /// send (instead of forwarding), while still opening channels and
    /// receiving normally. Byzantine nodes never appear as senders.
    pub byzantine: f64,
    /// Placement of the tracked rumor.
    pub placement: StartPlacement,
}

impl EnvironmentSpec {
    /// Whether this environment perturbs the run at all. The executor skips
    /// environment scheduling entirely for benign environments, so every
    /// perturbing dimension must be reflected here — a dimension this method
    /// misses would be silently elided. (`zones` alone is excluded on
    /// purpose: it only modulates churn and crash sampling.)
    pub fn is_hostile(&self) -> bool {
        self.loss > 0.0
            || !self.loss_bursts.is_empty()
            || self.churn.is_some()
            || self.crash.is_some()
            || self.edge_churn.is_some()
            || self.byzantine > 0.0
    }

    /// Effective per-packet loss probability at `round`: the base rate and
    /// every active burst are independent drop sources, so a packet survives
    /// with probability `(1 - loss) · ∏ (1 - probᵢ)`. All factors are
    /// positive (validation keeps each probability below 1), so the result
    /// always stays in `[0, 1)`.
    pub fn loss_at(&self, round: u64) -> f64 {
        let mut burst_survive = 1.0f64;
        for burst in &self.loss_bursts {
            if burst.active_at(round) {
                burst_survive *= 1.0 - burst.prob;
            }
        }
        if burst_survive == 1.0 {
            // Outside every burst the base rate applies *exactly* — no
            // `1 - (1 - loss)` float round-trip that would perturb the
            // engine's `gen_bool` threshold relative to a burst-free run.
            self.loss
        } else {
            1.0 - (1.0 - self.loss) * burst_survive
        }
    }
}

/// Failure zone of node `v` when `n` nodes are partitioned into `zones`
/// contiguous blocks: `⌊v · zones / n⌋`. Blocks differ in size by at most
/// one node and every zone is non-empty for `zones ≤ n`.
pub fn zone_of(v: NodeId, n: usize, zones: usize) -> usize {
    debug_assert!((v as usize) < n && zones >= 1);
    ((v as u128 * zones as u128) / n as u128) as usize
}

/// The contiguous node range making up failure zone `zone` under the
/// [`zone_of`] partition: `⌈zone · n / zones⌉ .. ⌈(zone+1) · n / zones⌉`.
pub fn zone_members(zone: usize, n: usize, zones: usize) -> std::ops::Range<NodeId> {
    debug_assert!(zone < zones && zones <= n);
    let lo = (zone as u128 * n as u128).div_ceil(zones as u128) as NodeId;
    let hi = ((zone as u128 + 1) * n as u128).div_ceil(zones as u128) as NodeId;
    lo..hi
}

/// When a scenario run ends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Run until every participating node knows every message (capped by the
    /// scenario's `max_rounds`).
    Complete,
    /// Run exactly this many rounds. Validation rejects a budget above the
    /// scenario's `max_rounds` cap — a budget the run could never spend is a
    /// user error, not something to truncate silently.
    Rounds(u64),
    /// Run until the tracked rumor is known by at least this fraction of the
    /// **alive** (crash-adjusted) population, in `(0, 1]` (capped by
    /// `max_rounds`). Churned-out nodes stay in the basis — they rejoin with
    /// state intact — while crashed nodes leave it, so the rule stays
    /// reachable after a crash burst (see `rpc_scenarios::exec` for the exact
    /// target arithmetic). With an [`InjectionSpec`] the rule applies **per
    /// rumor**: every rumor must reach the threshold (or expire) before the
    /// run stops.
    Coverage(f64),
    /// Run until every streaming rumor has either reached all participating
    /// nodes or expired (capped by `max_rounds`). Requires an
    /// [`InjectionSpec`].
    AllRumors,
}

/// A complete, validated scenario description.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Unique name used in reports and the registry.
    pub name: String,
    /// Graph model.
    pub topology: TopologySpec,
    /// Gossiping protocol.
    pub protocol: ProtocolSpec,
    /// Loss / churn / crash / placement conditions.
    pub environment: EnvironmentSpec,
    /// Multi-rumor streaming workload, if any. `None` is the classic
    /// configuration: every node starts knowing its own message and the
    /// message universe equals the node count.
    pub injection: Option<InjectionSpec>,
    /// Termination rule.
    pub stop: StopRule,
    /// Hard cap on executed rounds — applied uniformly to every protocol by
    /// the step-driven executor — and the horizon up to which churn waves are
    /// pre-sampled. Phase-based protocols (fast-gossiping, memory) are
    /// additionally bounded by their own paper configurations, whichever ends
    /// first.
    pub max_rounds: u64,
}

/// The default round cap for a graph of `n` nodes: generous enough for every
/// protocol in the registry, small enough that a stuck scenario ends quickly.
pub fn default_max_rounds(n: usize) -> u64 {
    64 * (log2n(n).ceil() as u64) + 64
}

impl Scenario {
    /// Starts building a scenario; `topology` fixes the scale.
    pub fn builder(name: impl Into<String>, topology: TopologySpec) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            topology,
            protocol: ProtocolSpec::default(),
            environment: EnvironmentSpec::default(),
            injection: None,
            rumor_ttl: None,
            stop: StopRule::Complete,
            max_rounds: None,
        }
    }

    /// Number of nodes in this scenario's graphs.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Serialises the scenario into the text format parsed by
    /// [`Scenario::parse_str`]. `parse_str(to_text(s)) == s` for every valid
    /// scenario.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {}\n", self.name));
        match self.topology {
            TopologySpec::ErdosRenyiPaper { n } => {
                out.push_str(&format!("topology = erdos-renyi\nn = {n}\n"));
            }
            TopologySpec::ErdosRenyiDegree { n, degree } => {
                out.push_str(&format!("topology = erdos-renyi\nn = {n}\ndegree = {degree}\n"));
            }
            TopologySpec::RandomRegular { n, degree } => {
                out.push_str(&format!("topology = random-regular\nn = {n}\ndegree = {degree}\n"));
            }
            TopologySpec::Complete { n } => {
                out.push_str(&format!("topology = complete\nn = {n}\n"));
            }
        }
        out.push_str(&format!("protocol = {}\n", self.protocol.name()));
        if self.environment.loss > 0.0 {
            out.push_str(&format!("loss = {}\n", self.environment.loss));
        }
        for burst in &self.environment.loss_bursts {
            out.push_str(&format!("loss-burst = {}:{}:{}\n", burst.start, burst.len, burst.prob));
        }
        if let Some(churn) = self.environment.churn {
            out.push_str(&format!(
                "churn = {}:{}:{}\n",
                churn.fraction, churn.period, churn.downtime
            ));
        }
        if let Some(crash) = self.environment.crash {
            match crash.zone {
                Some(zone) => {
                    out.push_str(&format!("crash = {}:{}@{}\n", crash.round, crash.count, zone))
                }
                None => out.push_str(&format!("crash = {}:{}\n", crash.round, crash.count)),
            }
        }
        if let Some(zones) = self.environment.zones {
            out.push_str(&format!("zones = {zones}\n"));
        }
        if let Some(ec) = self.environment.edge_churn {
            out.push_str(&format!("edge-churn = {}:{}\n", ec.fraction, ec.period));
        }
        if self.environment.byzantine > 0.0 {
            out.push_str(&format!("byzantine = {}\n", self.environment.byzantine));
        }
        if let Some(inj) = &self.injection {
            out.push_str(&format!("rumors = {}\n", inj.rumors));
            match &inj.pattern {
                InjectPattern::Poisson { rate } => {
                    out.push_str(&format!("inject = poisson:{rate}\n"));
                }
                InjectPattern::Hotspot { node, count } => {
                    out.push_str(&format!("inject = hotspot:{node}:{count}\n"));
                }
                InjectPattern::Explicit(entries) => {
                    for e in entries {
                        out.push_str(&format!("inject = {}:{}\n", e.round, e.source));
                    }
                }
            }
            if let Some(ttl) = inj.ttl {
                out.push_str(&format!("rumor-ttl = {ttl}\n"));
            }
        }
        out.push_str(&format!("start = {}\n", self.environment.placement.name()));
        match self.stop {
            StopRule::Complete => out.push_str("stop = complete\n"),
            StopRule::Rounds(r) => out.push_str(&format!("stop = rounds:{r}\n")),
            StopRule::Coverage(f) => out.push_str(&format!("stop = coverage:{f}\n")),
            StopRule::AllRumors => out.push_str("stop = all-rumors\n"),
        }
        // The default cap is derived from n; only a custom cap is spelled out.
        if self.max_rounds != default_max_rounds(self.topology.num_nodes()) {
            out.push_str(&format!("max-rounds = {}\n", self.max_rounds));
        }
        out
    }

    /// Parses one scenario from the `key = value` text format (see the module
    /// docs for the grammar).
    pub fn parse_str(text: &str) -> Result<Scenario, ScenarioError> {
        let mut name = None;
        let mut topology = None;
        let mut n = None;
        let mut degree: Option<f64> = None;
        let mut protocol = ProtocolSpec::default();
        let mut environment = EnvironmentSpec::default();
        let mut rumors: Option<usize> = None;
        let mut inject_pattern: Option<InjectPattern> = None;
        let mut rumor_ttl: Option<u64> = None;
        let mut stop = StopRule::Complete;
        let mut max_rounds = None;
        let mut unknown_keys: Vec<String> = Vec::new();

        for raw_line in text.lines() {
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| ScenarioError::Parse(format!("expected `key = value`: {line}")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => name = Some(value.to_string()),
                "topology" => topology = Some(value.to_string()),
                "n" => n = Some(parse_num::<usize>("n", value)?),
                "degree" => degree = Some(parse_num::<f64>("degree", value)?),
                "protocol" => {
                    protocol = match value {
                        "push-pull" => ProtocolSpec::PushPull,
                        "fast-gossiping" => ProtocolSpec::FastGossiping,
                        "memory" => ProtocolSpec::Memory,
                        "broadcast-push" => ProtocolSpec::BroadcastPush,
                        "broadcast-push-pull" => ProtocolSpec::BroadcastPushPull,
                        "leader-election" => ProtocolSpec::LeaderElection,
                        other => {
                            return Err(ScenarioError::Parse(format!("unknown protocol: {other}")))
                        }
                    }
                }
                "loss" => environment.loss = parse_num::<f64>("loss", value)?,
                "loss-burst" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if parts.len() != 3 {
                        return Err(ScenarioError::Parse(format!(
                            "loss-burst must be start:len:prob, got {value}"
                        )));
                    }
                    // The one repeatable key: every occurrence appends.
                    environment.loss_bursts.push(LossBurstSpec {
                        start: parse_num::<u64>("loss-burst start", parts[0])?,
                        len: parse_num::<u64>("loss-burst len", parts[1])?,
                        prob: parse_num::<f64>("loss-burst prob", parts[2])?,
                    });
                }
                "churn" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if parts.len() != 3 {
                        return Err(ScenarioError::Parse(format!(
                            "churn must be fraction:period:downtime, got {value}"
                        )));
                    }
                    environment.churn = Some(ChurnSpec {
                        fraction: parse_num::<f64>("churn fraction", parts[0])?,
                        period: parse_num::<u64>("churn period", parts[1])?,
                        downtime: parse_num::<u64>("churn downtime", parts[2])?,
                    });
                }
                "crash" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if parts.len() != 2 {
                        return Err(ScenarioError::Parse(format!(
                            "crash must be round:count[@zone], got {value}"
                        )));
                    }
                    let (count_part, zone) = match parts[1].split_once('@') {
                        Some((count, zone)) => {
                            (count, Some(parse_num::<usize>("crash zone", zone)?))
                        }
                        None => (parts[1], None),
                    };
                    environment.crash = Some(CrashSpec {
                        round: parse_num::<u64>("crash round", parts[0])?,
                        count: parse_num::<usize>("crash count", count_part)?,
                        zone,
                    });
                }
                "zones" => environment.zones = Some(parse_num::<usize>("zones", value)?),
                "edge-churn" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if parts.len() != 2 {
                        return Err(ScenarioError::Parse(format!(
                            "edge-churn must be fraction:period, got {value}"
                        )));
                    }
                    environment.edge_churn = Some(EdgeChurnSpec {
                        fraction: parse_num::<f64>("edge-churn fraction", parts[0])?,
                        period: parse_num::<u64>("edge-churn period", parts[1])?,
                    });
                }
                "byzantine" => environment.byzantine = parse_num::<f64>("byzantine", value)?,
                "rumors" => rumors = Some(parse_num::<usize>("rumors", value)?),
                "inject" => {
                    let mixed = || {
                        ScenarioError::Parse(
                            "inject forms cannot be mixed: use either one sampled form \
                             (poisson/hotspot) or explicit round:source entries"
                                .into(),
                        )
                    };
                    if let Some(rate) = value.strip_prefix("poisson:") {
                        if matches!(inject_pattern, Some(InjectPattern::Explicit(_))) {
                            return Err(mixed());
                        }
                        inject_pattern = Some(InjectPattern::Poisson {
                            rate: parse_num::<f64>("inject poisson rate", rate)?,
                        });
                    } else if let Some(rest) = value.strip_prefix("hotspot:") {
                        if matches!(inject_pattern, Some(InjectPattern::Explicit(_))) {
                            return Err(mixed());
                        }
                        let parts: Vec<&str> = rest.split(':').collect();
                        if parts.len() != 2 {
                            return Err(ScenarioError::Parse(format!(
                                "inject hotspot must be hotspot:node:count, got {value}"
                            )));
                        }
                        inject_pattern = Some(InjectPattern::Hotspot {
                            node: parse_num::<NodeId>("inject hotspot node", parts[0])?,
                            count: parse_num::<usize>("inject hotspot count", parts[1])?,
                        });
                    } else {
                        let (round, source) = value.split_once(':').ok_or_else(|| {
                            ScenarioError::Parse(format!(
                                "inject must be poisson:rate, hotspot:node:count, \
                                 or round:source, got {value}"
                            ))
                        })?;
                        let entry = InjectionEntry {
                            round: parse_num::<u64>("inject round", round)?,
                            source: parse_num::<NodeId>("inject source", source)?,
                        };
                        // Like loss-burst, explicit entries accumulate.
                        match &mut inject_pattern {
                            Some(InjectPattern::Explicit(entries)) => entries.push(entry),
                            None => inject_pattern = Some(InjectPattern::Explicit(vec![entry])),
                            Some(_) => return Err(mixed()),
                        }
                    }
                }
                "rumor-ttl" => rumor_ttl = Some(parse_num::<u64>("rumor-ttl", value)?),
                "start" => {
                    environment.placement = match value {
                        "random" => StartPlacement::Random,
                        "min-degree" => StartPlacement::MinDegree,
                        "max-degree" => StartPlacement::MaxDegree,
                        other => {
                            return Err(ScenarioError::Parse(format!("unknown start: {other}")))
                        }
                    }
                }
                "stop" => {
                    stop = if value == "complete" {
                        StopRule::Complete
                    } else if value == "all-rumors" {
                        StopRule::AllRumors
                    } else if let Some(r) = value.strip_prefix("rounds:") {
                        StopRule::Rounds(parse_num::<u64>("stop rounds", r)?)
                    } else if let Some(f) = value.strip_prefix("coverage:") {
                        StopRule::Coverage(parse_num::<f64>("stop coverage", f)?)
                    } else {
                        return Err(ScenarioError::Parse(format!("unknown stop rule: {value}")));
                    };
                }
                "max-rounds" => max_rounds = Some(parse_num::<u64>("max-rounds", value)?),
                // Collect every unknown key instead of failing on the first,
                // so a typo-ridden file is fixed in one round trip. The
                // roundtrip guarantee depends on this being an error: silently
                // dropping keys would make parse(to_text(s)) lossy for inputs
                // the format does not actually support.
                other => {
                    if !unknown_keys.iter().any(|k| k == other) {
                        unknown_keys.push(other.to_string());
                    }
                }
            }
        }

        if !unknown_keys.is_empty() {
            return Err(ScenarioError::Parse(format!(
                "unknown key{}: {}",
                if unknown_keys.len() == 1 { "" } else { "s" },
                unknown_keys.join(", ")
            )));
        }

        let name = name.ok_or_else(|| ScenarioError::Parse("missing key: name".into()))?;
        let n = n.ok_or_else(|| ScenarioError::Parse("missing key: n".into()))?;
        let topology = match topology.as_deref() {
            Some("erdos-renyi") | None => match degree {
                Some(d) => TopologySpec::ErdosRenyiDegree { n, degree: d },
                None => TopologySpec::ErdosRenyiPaper { n },
            },
            Some("random-regular") => {
                let d = degree.ok_or_else(|| {
                    ScenarioError::Parse("random-regular requires a degree".into())
                })?;
                if !d.is_finite() || d.fract() != 0.0 || d < 1.0 {
                    return Err(ScenarioError::Parse(format!(
                        "random-regular degree must be a positive integer, got {d}"
                    )));
                }
                TopologySpec::RandomRegular { n, degree: d as usize }
            }
            Some("complete") => TopologySpec::Complete { n },
            Some(other) => return Err(ScenarioError::Parse(format!("unknown topology: {other}"))),
        };

        // `inject` / `rumor-ttl` only mean something for a streaming
        // workload, so either without `rumors` is a spec inconsistency (the
        // builder cannot even represent it).
        let injection = match rumors {
            Some(r) => Some(InjectionSpec {
                rumors: r,
                pattern: inject_pattern.unwrap_or(InjectPattern::Poisson { rate: 1.0 }),
                ttl: rumor_ttl,
            }),
            None if inject_pattern.is_some() => {
                return Err(ScenarioError::Invalid("inject requires the rumors key".into()));
            }
            None if rumor_ttl.is_some() => {
                return Err(ScenarioError::Invalid("rumor-ttl requires the rumors key".into()));
            }
            None => None,
        };

        let mut builder = Scenario::builder(name, topology);
        builder.protocol = protocol;
        builder.environment = environment;
        builder.injection = injection;
        builder.stop = stop;
        builder.max_rounds = max_rounds;
        builder.build()
    }

    /// Parses several scenarios separated by blank lines. Comment-only lines
    /// belong to the surrounding block (they are not separators), matching
    /// what [`Scenario::parse_str`] accepts inside a block.
    pub fn parse_many(text: &str) -> Result<Vec<Scenario>, ScenarioError> {
        let mut scenarios = Vec::new();
        let mut block = String::new();
        let mut has_content = false;
        for line in text.lines().chain(std::iter::once("")) {
            if line.trim().is_empty() {
                if has_content {
                    scenarios.push(Scenario::parse_str(&block)?);
                }
                block.clear();
                has_content = false;
            } else {
                block.push_str(line);
                block.push('\n');
                // A block of nothing but comments (e.g. a file header) is not
                // a scenario.
                has_content |= !line.split('#').next().unwrap_or("").trim().is_empty();
            }
        }
        Ok(scenarios)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, ScenarioError> {
    value
        .trim()
        .parse::<T>()
        .map_err(|_| ScenarioError::Parse(format!("invalid value for {key}: {value}")))
}

/// Builder returned by [`Scenario::builder`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: String,
    topology: TopologySpec,
    protocol: ProtocolSpec,
    environment: EnvironmentSpec,
    injection: Option<InjectionSpec>,
    rumor_ttl: Option<u64>,
    stop: StopRule,
    max_rounds: Option<u64>,
}

impl ScenarioBuilder {
    /// Selects the protocol (default push-pull).
    pub fn protocol(mut self, protocol: ProtocolSpec) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the per-packet loss probability.
    pub fn loss(mut self, loss: f64) -> Self {
        self.environment.loss = loss;
        self
    }

    /// Adds periodic churn (see [`ChurnSpec`]).
    pub fn churn(mut self, fraction: f64, period: u64, downtime: u64) -> Self {
        self.environment.churn = Some(ChurnSpec { fraction, period, downtime });
        self
    }

    /// Appends a loss burst (see [`LossBurstSpec`]); repeatable.
    pub fn loss_burst(mut self, start: u64, len: u64, prob: f64) -> Self {
        self.environment.loss_bursts.push(LossBurstSpec { start, len, prob });
        self
    }

    /// Adds a one-shot crash burst (see [`CrashSpec`]).
    pub fn crash(mut self, round: u64, count: usize) -> Self {
        self.environment.crash = Some(CrashSpec { round, count, zone: None });
        self
    }

    /// Adds a crash burst confined to one failure zone; requires
    /// [`ScenarioBuilder::zones`].
    pub fn crash_in_zone(mut self, round: u64, count: usize, zone: usize) -> Self {
        self.environment.crash = Some(CrashSpec { round, count, zone: Some(zone) });
        self
    }

    /// Partitions the nodes into `zones` failure domains (see
    /// [`EnvironmentSpec::zones`]).
    pub fn zones(mut self, zones: usize) -> Self {
        self.environment.zones = Some(zones);
        self
    }

    /// Adds periodic edge churn (see [`EdgeChurnSpec`]).
    pub fn edge_churn(mut self, fraction: f64, period: u64) -> Self {
        self.environment.edge_churn = Some(EdgeChurnSpec { fraction, period });
        self
    }

    /// Makes a seeded `fraction` of the nodes Byzantine (silent droppers).
    pub fn byzantine(mut self, fraction: f64) -> Self {
        self.environment.byzantine = fraction;
        self
    }

    /// Selects the tracked-rumor placement.
    pub fn placement(mut self, placement: StartPlacement) -> Self {
        self.environment.placement = placement;
        self
    }

    /// Installs a fully specified streaming workload (see [`InjectionSpec`]).
    pub fn injection(mut self, injection: InjectionSpec) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Streams `rumors` Poisson arrivals at `rate` mean rumors per round.
    pub fn inject_poisson(mut self, rumors: usize, rate: f64) -> Self {
        self.injection =
            Some(InjectionSpec { rumors, pattern: InjectPattern::Poisson { rate }, ttl: None });
        self
    }

    /// Streams `rumors` from one node, `count` per round (see
    /// [`InjectPattern::Hotspot`]).
    pub fn inject_hotspot(mut self, rumors: usize, node: NodeId, count: usize) -> Self {
        self.injection = Some(InjectionSpec {
            rumors,
            pattern: InjectPattern::Hotspot { node, count },
            ttl: None,
        });
        self
    }

    /// Streams rumors on an explicit schedule: entry `m` injects rumor `m`.
    pub fn inject_explicit(mut self, entries: Vec<InjectionEntry>) -> Self {
        self.injection = Some(InjectionSpec {
            rumors: entries.len(),
            pattern: InjectPattern::Explicit(entries),
            ttl: None,
        });
        self
    }

    /// Expires every streaming rumor `ttl` rounds after its injection;
    /// requires one of the `inject_*` methods (checked at build time).
    pub fn rumor_ttl(mut self, ttl: u64) -> Self {
        self.rumor_ttl = Some(ttl);
        self
    }

    /// Selects the stop rule (default [`StopRule::Complete`]).
    pub fn stop(mut self, stop: StopRule) -> Self {
        self.stop = stop;
        self
    }

    /// Overrides the hard round cap (default [`default_max_rounds`]).
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Validates the specification and produces the [`Scenario`].
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let n = self.topology.num_nodes();
        if n == 0 {
            return Err(ScenarioError::Invalid("topology has zero nodes".into()));
        }
        // Names must survive the text format: no comment marker, no line
        // breaks, no surrounding whitespace (the parser trims values).
        if self.name.is_empty()
            || self.name != self.name.trim()
            || self.name.contains(['#', '\n', '\r'])
        {
            return Err(ScenarioError::Invalid(format!(
                "scenario name {:?} must be non-empty, trimmed, and free of '#' and line breaks",
                self.name
            )));
        }
        if let TopologySpec::ErdosRenyiDegree { degree, .. } = self.topology {
            if !degree.is_finite() || degree < 0.0 {
                return Err(ScenarioError::Invalid(format!(
                    "expected degree must be finite and non-negative, got {degree}"
                )));
            }
        }
        if let TopologySpec::RandomRegular { n, degree } = self.topology {
            if degree == 0 {
                return Err(ScenarioError::Invalid(
                    "random-regular degree must be at least 1 (an edgeless graph cannot gossip)"
                        .into(),
                ));
            }
            if n * degree % 2 != 0 {
                return Err(ScenarioError::Invalid(format!(
                    "random-regular requires even n * degree, got {n} * {degree}"
                )));
            }
            if degree >= n {
                return Err(ScenarioError::Invalid(format!(
                    "random-regular degree {degree} must be below n = {n}"
                )));
            }
        }
        let env = &self.environment;
        if !env.loss.is_finite() || !(0.0..1.0).contains(&env.loss) {
            return Err(ScenarioError::Invalid(format!(
                "loss probability must lie in [0, 1), got {}",
                env.loss
            )));
        }
        if let Some(churn) = env.churn {
            if !churn.fraction.is_finite() || !(0.0..=1.0).contains(&churn.fraction) {
                return Err(ScenarioError::Invalid(format!(
                    "churn fraction must lie in [0, 1], got {}",
                    churn.fraction
                )));
            }
            if churn.period == 0 || churn.downtime == 0 {
                return Err(ScenarioError::Invalid(
                    "churn period and downtime must be at least 1".into(),
                ));
            }
        }
        for burst in &env.loss_bursts {
            if !burst.prob.is_finite() || !(0.0..1.0).contains(&burst.prob) {
                return Err(ScenarioError::Invalid(format!(
                    "loss-burst probability must lie in [0, 1), got {}",
                    burst.prob
                )));
            }
            if burst.len == 0 {
                return Err(ScenarioError::Invalid("loss-burst len must be at least 1".into()));
            }
        }
        if let Some(zones) = env.zones {
            if zones == 0 || zones > n {
                return Err(ScenarioError::Invalid(format!(
                    "zones must lie in [1, n]; got {zones} zones for n = {n}"
                )));
            }
        }
        if let Some(crash) = env.crash {
            if crash.count > n {
                return Err(ScenarioError::Invalid(format!(
                    "cannot crash {} of {} nodes",
                    crash.count, n
                )));
            }
            if let Some(zone) = crash.zone {
                let zones = env.zones.ok_or_else(|| {
                    ScenarioError::Invalid(format!("crash zone @{zone} requires the zones key"))
                })?;
                if zone >= zones {
                    return Err(ScenarioError::Invalid(format!(
                        "crash zone {zone} out of range for {zones} zones"
                    )));
                }
                let members = zone_members(zone, n, zones);
                let size = (members.end - members.start) as usize;
                if crash.count > size {
                    return Err(ScenarioError::Invalid(format!(
                        "cannot crash {} of the {} nodes in zone {}",
                        crash.count, size, zone
                    )));
                }
            }
        }
        if let Some(ec) = env.edge_churn {
            if !ec.fraction.is_finite() || !(0.0..=1.0).contains(&ec.fraction) {
                return Err(ScenarioError::Invalid(format!(
                    "edge-churn fraction must lie in [0, 1], got {}",
                    ec.fraction
                )));
            }
            if ec.period == 0 {
                return Err(ScenarioError::Invalid("edge-churn period must be at least 1".into()));
            }
        }
        if !env.byzantine.is_finite() || !(0.0..=1.0).contains(&env.byzantine) {
            return Err(ScenarioError::Invalid(format!(
                "byzantine fraction must lie in [0, 1], got {}",
                env.byzantine
            )));
        }
        let max_rounds = self.max_rounds.unwrap_or_else(|| default_max_rounds(n));
        if max_rounds == 0 {
            return Err(ScenarioError::Invalid("max-rounds must be at least 1".into()));
        }
        let mut injection = self.injection;
        if let Some(ttl) = self.rumor_ttl {
            match &mut injection {
                Some(inj) => inj.ttl = Some(ttl),
                None => {
                    return Err(ScenarioError::Invalid(
                        "rumor-ttl requires a streaming injection (the rumors key)".into(),
                    ));
                }
            }
        }
        if let Some(inj) = &injection {
            // Like unknown keys at parse time, every problem with the
            // injection spec is collected and reported in one error.
            let mut problems: Vec<String> = Vec::new();
            if inj.rumors == 0 {
                problems.push("rumors must be at least 1".into());
            }
            if !self.protocol.supports_streaming() {
                problems.push(format!(
                    "streaming injection requires the push-pull protocol or a \
                     broadcast baseline (the {} protocol assumes the classic \
                     one-rumor-per-node start)",
                    self.protocol.name()
                ));
            }
            match &inj.pattern {
                InjectPattern::Poisson { rate } => {
                    if !rate.is_finite() || *rate <= 0.0 {
                        problems
                            .push(format!("poisson rate must be positive and finite, got {rate}"));
                    }
                }
                InjectPattern::Hotspot { node, count } => {
                    if *node as usize >= n {
                        problems.push(format!("hotspot node {node} out of range for n = {n}"));
                    }
                    if *count == 0 {
                        problems.push("hotspot count must be at least 1".into());
                    }
                }
                InjectPattern::Explicit(entries) => {
                    if entries.len() != inj.rumors {
                        problems.push(format!(
                            "explicit injection needs exactly {} round:source entries \
                             (one per rumor), got {}",
                            inj.rumors,
                            entries.len()
                        ));
                    }
                    for (m, e) in entries.iter().enumerate() {
                        if e.round >= max_rounds {
                            problems.push(format!(
                                "rumor {m} injected at round {} at or past the \
                                 max-rounds cap {max_rounds}",
                                e.round
                            ));
                        }
                        if e.source as usize >= n {
                            problems.push(format!(
                                "rumor {m} source {} out of range for n = {n}",
                                e.source
                            ));
                        }
                    }
                }
            }
            if inj.ttl == Some(0) {
                problems.push("rumor-ttl must be at least 1".into());
            }
            if !problems.is_empty() {
                return Err(ScenarioError::Invalid(format!(
                    "injection spec: {}",
                    problems.join("; ")
                )));
            }
        }
        if self.protocol.is_broadcast() && injection.is_none() {
            return Err(ScenarioError::Invalid(format!(
                "the {} protocol requires a streaming injection (the rumors/inject \
                 keys): broadcasting spreads injected rumors, there is no classic \
                 one-rumor-per-node start to fall back to",
                self.protocol.name()
            )));
        }
        if matches!(self.stop, StopRule::AllRumors) && injection.is_none() {
            return Err(ScenarioError::Invalid(
                "stop = all-rumors requires a streaming injection (the rumors key)".into(),
            ));
        }
        match self.stop {
            StopRule::Coverage(f) if !(f.is_finite() && 0.0 < f && f <= 1.0) => {
                return Err(ScenarioError::Invalid(format!(
                    "coverage threshold must lie in (0, 1], got {f}"
                )));
            }
            StopRule::Rounds(0) => {
                return Err(ScenarioError::Invalid("round budget must be at least 1".into()));
            }
            // A budget above the cap is a user error: the run could never
            // execute that many rounds, so truncating it silently would make
            // every outcome report `completed = false` round counts that the
            // spec never asked for.
            StopRule::Rounds(r) if r > max_rounds => {
                return Err(ScenarioError::Invalid(format!(
                    "round budget {r} exceeds the max-rounds cap {max_rounds}; \
                     raise max-rounds or lower the budget"
                )));
            }
            _ => {}
        }
        Ok(Scenario {
            name: self.name,
            topology: self.topology,
            protocol: self.protocol,
            environment: self.environment,
            injection,
            stop: self.stop,
            max_rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::builder("demo", TopologySpec::ErdosRenyiPaper { n: 256 })
            .loss(0.1)
            .churn(0.05, 4, 8)
            .crash(3, 16)
            .placement(StartPlacement::MinDegree)
            .stop(StopRule::Coverage(0.9))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_a_valid_scenario() {
        let s = sample();
        assert_eq!(s.num_nodes(), 256);
        assert_eq!(s.protocol.name(), "push-pull");
        assert!(s.environment.is_hostile());
        assert_eq!(s.max_rounds, default_max_rounds(256));
    }

    #[test]
    fn text_roundtrip_preserves_every_field() {
        let s = sample();
        let reparsed = Scenario::parse_str(&s.to_text()).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn text_roundtrip_for_every_topology_and_protocol() {
        let topologies = [
            TopologySpec::ErdosRenyiPaper { n: 128 },
            TopologySpec::ErdosRenyiDegree { n: 128, degree: 12.0 },
            TopologySpec::RandomRegular { n: 128, degree: 6 },
            TopologySpec::Complete { n: 128 },
        ];
        for topology in topologies {
            for protocol in [
                ProtocolSpec::PushPull,
                ProtocolSpec::FastGossiping,
                ProtocolSpec::Memory,
                ProtocolSpec::BroadcastPush,
                ProtocolSpec::BroadcastPushPull,
                ProtocolSpec::LeaderElection,
            ] {
                let mut builder = Scenario::builder("t", topology.clone()).protocol(protocol);
                if protocol.is_broadcast() {
                    // Broadcast baselines require an injection to start from.
                    builder = builder.inject_explicit(vec![InjectionEntry { round: 0, source: 0 }]);
                }
                let s = builder.build().unwrap();
                assert_eq!(Scenario::parse_str(&s.to_text()).unwrap(), s);
            }
        }
    }

    fn hostile() -> Scenario {
        Scenario::builder("hostile", TopologySpec::ErdosRenyiPaper { n: 256 })
            .loss(0.05)
            .loss_burst(2, 4, 0.5)
            .loss_burst(8, 2, 0.25)
            .churn(0.05, 4, 8)
            .zones(8)
            .crash_in_zone(3, 16, 5)
            .edge_churn(0.2, 4)
            .byzantine(0.1)
            .stop(StopRule::Coverage(0.8))
            .build()
            .unwrap()
    }

    #[test]
    fn every_new_dimension_roundtrips_through_the_text_format() {
        let s = hostile();
        let text = s.to_text();
        for needle in [
            "loss-burst = 2:4:0.5",
            "loss-burst = 8:2:0.25",
            "crash = 3:16@5",
            "zones = 8",
            "edge-churn = 0.2:4",
            "byzantine = 0.1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert_eq!(Scenario::parse_str(&text).unwrap(), s);
    }

    #[test]
    fn loss_bursts_accumulate_in_file_order() {
        let s =
            Scenario::parse_str("name = x\nn = 64\nloss-burst = 1:2:0.5\nloss-burst = 4:1:0.25\n")
                .unwrap();
        assert_eq!(
            s.environment.loss_bursts,
            vec![
                LossBurstSpec { start: 1, len: 2, prob: 0.5 },
                LossBurstSpec { start: 4, len: 1, prob: 0.25 },
            ]
        );
    }

    #[test]
    fn loss_at_layers_active_bursts_over_the_base_rate() {
        let env = hostile().environment;
        // Outside every burst: base rate only.
        assert_eq!(env.loss_at(0), 0.05);
        assert_eq!(env.loss_at(6), 0.05);
        assert_eq!(env.loss_at(10), 0.05);
        // Inside the first burst: 1 - 0.95 * 0.5.
        assert!((env.loss_at(2) - (1.0 - 0.95 * 0.5)).abs() < 1e-12);
        assert!((env.loss_at(5) - (1.0 - 0.95 * 0.5)).abs() < 1e-12);
        // Inside the second burst: 1 - 0.95 * 0.75.
        assert!((env.loss_at(9) - (1.0 - 0.95 * 0.75)).abs() < 1e-12);
        // Overlapping bursts multiply and stay below 1.
        let stacked = Scenario::builder("s", TopologySpec::Complete { n: 16 })
            .loss_burst(0, 10, 0.9)
            .loss_burst(0, 10, 0.9)
            .build()
            .unwrap()
            .environment;
        let at = stacked.loss_at(3);
        assert!((at - (1.0 - 0.01)).abs() < 1e-12);
        assert!(at < 1.0);
        // A loss-burst-only environment is hostile even at loss = 0.
        assert_eq!(stacked.loss, 0.0);
        assert!(stacked.is_hostile());
    }

    #[test]
    fn every_new_dimension_alone_makes_the_environment_hostile() {
        let base = || Scenario::builder("x", TopologySpec::Complete { n: 64 });
        assert!(!base().build().unwrap().environment.is_hostile());
        assert!(!base().zones(4).build().unwrap().environment.is_hostile());
        assert!(base().loss_burst(1, 2, 0.5).build().unwrap().environment.is_hostile());
        assert!(base().edge_churn(0.1, 4).build().unwrap().environment.is_hostile());
        assert!(base().byzantine(0.1).build().unwrap().environment.is_hostile());
    }

    #[test]
    fn zone_partition_is_total_contiguous_and_balanced() {
        for (n, zones) in [(64, 8), (100, 7), (17, 17), (255, 3), (16, 1)] {
            let mut counted = 0usize;
            for zone in 0..zones {
                let members = zone_members(zone, n, zones);
                assert!(members.end > members.start, "zone {zone} empty for n={n} z={zones}");
                for v in members.clone() {
                    assert_eq!(zone_of(v, n, zones), zone);
                }
                counted += (members.end - members.start) as usize;
                let size = (members.end - members.start) as usize;
                assert!(
                    size >= n / zones && size <= n.div_ceil(zones),
                    "zone {zone} has {size} nodes for n={n} z={zones}"
                );
            }
            assert_eq!(counted, n, "partition not total for n={n} z={zones}");
        }
    }

    #[test]
    fn validation_rejects_bad_hostile_dimensions() {
        let base = || Scenario::builder("x", TopologySpec::ErdosRenyiPaper { n: 64 });
        assert!(matches!(base().loss_burst(0, 2, 1.0).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().loss_burst(0, 0, 0.5).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(
            base().loss_burst(0, 2, f64::NAN).build(),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(matches!(base().zones(0).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().zones(65).build(), Err(ScenarioError::Invalid(_))));
        // A zoned crash needs the zones key, a valid zone index, and a count
        // that fits inside the zone.
        assert!(matches!(base().crash_in_zone(1, 4, 2).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(
            base().zones(4).crash_in_zone(1, 4, 4).build(),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(matches!(
            base().zones(4).crash_in_zone(1, 17, 2).build(),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(base().zones(4).crash_in_zone(1, 16, 2).build().is_ok());
        assert!(matches!(base().edge_churn(1.5, 4).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().edge_churn(0.2, 0).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().byzantine(1.5).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().byzantine(-0.1).build(), Err(ScenarioError::Invalid(_))));
        assert!(base().byzantine(1.0).build().is_ok());
    }

    #[test]
    fn parse_rejects_malformed_hostile_values() {
        for line in [
            "loss-burst = 1:2",
            "loss-burst = 1:2:0.5:9",
            "loss-burst = a:2:0.5",
            "crash = 1:2@z",
            "crash = 1:2@",
            "edge-churn = 0.5",
            "edge-churn = 0.5:4:9",
            "zones = -3",
            "byzantine = many",
        ] {
            let text = format!("name = x\nn = 64\n{line}\n");
            assert!(
                matches!(Scenario::parse_str(&text), Err(ScenarioError::Parse(_))),
                "accepted {line:?}"
            );
        }
    }

    #[test]
    fn parse_accepts_comments_and_whitespace() {
        let text = "
            # a comment
            name = lossy   # trailing comment
            topology = complete
            n = 64
            loss = 0.25
            stop = rounds:10
        ";
        let s = Scenario::parse_str(text).unwrap();
        assert_eq!(s.name, "lossy");
        assert_eq!(s.topology, TopologySpec::Complete { n: 64 });
        assert_eq!(s.environment.loss, 0.25);
        assert_eq!(s.stop, StopRule::Rounds(10));
    }

    #[test]
    fn parse_many_splits_on_blank_lines() {
        let text = "name = a\nn = 32\n\nname = b\nn = 64\ntopology = complete\n";
        let scenarios = Scenario::parse_many(text).unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].name, "a");
        assert_eq!(scenarios[1].topology, TopologySpec::Complete { n: 64 });
    }

    #[test]
    fn parse_many_keeps_comment_lines_inside_blocks() {
        let text = "# file header comment\n\nname = a\n# interior comment\nn = 32\n\n# trailer\n";
        let scenarios = Scenario::parse_many(text).unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].name, "a");
        assert_eq!(scenarios[0].num_nodes(), 32);
    }

    #[test]
    fn parse_rejects_non_integer_regular_degrees() {
        for degree in ["6.9", "0", "-3"] {
            let text = format!("name = x\nn = 32\ntopology = random-regular\ndegree = {degree}");
            assert!(
                matches!(Scenario::parse_str(&text), Err(ScenarioError::Parse(_))),
                "accepted degree {degree}"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_erdos_renyi_degrees() {
        for degree in [-5.0, f64::NAN, f64::INFINITY] {
            let built =
                Scenario::builder("x", TopologySpec::ErdosRenyiDegree { n: 64, degree }).build();
            assert!(matches!(built, Err(ScenarioError::Invalid(_))), "accepted degree {degree}");
        }
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values() {
        assert!(matches!(
            Scenario::parse_str("name = x\nn = 32\nbogus = 1"),
            Err(ScenarioError::Parse(_))
        ));
        // Every unrecognized key of a block is reported, not just the first,
        // and duplicates are listed once.
        match Scenario::parse_str("name = x\nn = 32\nbogus = 1\ntypo = 2\nbogus = 3") {
            Err(ScenarioError::Parse(msg)) => {
                assert_eq!(msg, "unknown keys: bogus, typo", "got: {msg}");
            }
            other => panic!("expected a parse error listing all unknown keys, got {other:?}"),
        }
        match Scenario::parse_str("name = x\nn = 32\nlost = 0.1") {
            Err(ScenarioError::Parse(msg)) => {
                assert_eq!(msg, "unknown key: lost", "got: {msg}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        assert!(matches!(
            Scenario::parse_str("name = x\nn = 32\nloss = banana"),
            Err(ScenarioError::Parse(_))
        ));
        assert!(matches!(Scenario::parse_str("n = 32"), Err(ScenarioError::Parse(_))));
        assert!(matches!(
            Scenario::parse_str("name = x\nn = 32\nstop = never"),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        let base = || Scenario::builder("x", TopologySpec::ErdosRenyiPaper { n: 64 });
        assert!(matches!(base().loss(1.5).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().churn(2.0, 4, 4).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().churn(0.1, 0, 4).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().crash(1, 65).build(), Err(ScenarioError::Invalid(_))));
        assert!(base().stop(StopRule::Coverage(0.0)).build().is_err());
        assert!(base().stop(StopRule::Rounds(0)).build().is_err());
        assert!(matches!(
            Scenario::builder("x", TopologySpec::RandomRegular { n: 9, degree: 3 }).build(),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(base().max_rounds(5).build().is_ok());
    }

    #[test]
    fn every_stop_rule_is_valid_for_every_protocol() {
        // The step-driven executor removed the push-pull-only restriction:
        // round budgets, coverage thresholds and explicit caps now validate
        // for the phase-based protocols too.
        for protocol in [
            ProtocolSpec::PushPull,
            ProtocolSpec::FastGossiping,
            ProtocolSpec::Memory,
            ProtocolSpec::LeaderElection,
        ] {
            for stop in [StopRule::Complete, StopRule::Rounds(5), StopRule::Coverage(0.9)] {
                let built = Scenario::builder("x", TopologySpec::ErdosRenyiPaper { n: 64 })
                    .protocol(protocol)
                    .stop(stop)
                    .build();
                assert!(built.is_ok(), "{} + {:?} rejected", protocol.name(), stop);
            }
            let capped = Scenario::builder("x", TopologySpec::ErdosRenyiPaper { n: 64 })
                .protocol(protocol)
                .max_rounds(40)
                .build();
            assert!(capped.is_ok(), "{} + explicit cap rejected", protocol.name());
        }
    }

    #[test]
    fn round_budgets_above_the_cap_are_rejected_not_clamped() {
        let base = || Scenario::builder("x", TopologySpec::ErdosRenyiPaper { n: 64 });
        // Against an explicit cap...
        assert!(matches!(
            base().max_rounds(10).stop(StopRule::Rounds(11)).build(),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(base().max_rounds(10).stop(StopRule::Rounds(10)).build().is_ok());
        // ...and against the derived default cap.
        let over = default_max_rounds(64) + 1;
        assert!(matches!(
            base().stop(StopRule::Rounds(over)).build(),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn every_injection_pattern_roundtrips_through_the_text_format() {
        let base = || Scenario::builder("stream", TopologySpec::ErdosRenyiPaper { n: 128 });
        let cases = [
            base().inject_poisson(16, 1.5).stop(StopRule::AllRumors).build().unwrap(),
            base().inject_hotspot(12, 7, 4).rumor_ttl(24).build().unwrap(),
            base()
                .inject_explicit(vec![
                    InjectionEntry { round: 0, source: 3 },
                    InjectionEntry { round: 2, source: 9 },
                    InjectionEntry { round: 2, source: 0 },
                ])
                .stop(StopRule::Coverage(0.9))
                .build()
                .unwrap(),
        ];
        for s in cases {
            let text = s.to_text();
            assert_eq!(Scenario::parse_str(&text).unwrap(), s, "lossy roundtrip for:\n{text}");
        }
        let explicit = base()
            .inject_explicit(vec![
                InjectionEntry { round: 0, source: 3 },
                InjectionEntry { round: 2, source: 9 },
            ])
            .build()
            .unwrap()
            .to_text();
        assert!(explicit.contains("inject = 0:3\ninject = 2:9"), "got:\n{explicit}");
    }

    #[test]
    fn rumors_without_inject_defaults_to_unit_rate_poisson() {
        let s = Scenario::parse_str("name = x\nn = 64\nrumors = 8\n").unwrap();
        let inj = s.injection.as_ref().unwrap();
        assert_eq!(inj.rumors, 8);
        assert_eq!(inj.pattern, InjectPattern::Poisson { rate: 1.0 });
        assert_eq!(inj.ttl, None);
        assert_eq!(Scenario::parse_str(&s.to_text()).unwrap(), s);
    }

    #[test]
    fn injection_validation_reports_every_problem_at_once() {
        let built = Scenario::builder("x", TopologySpec::Complete { n: 16 })
            .max_rounds(10)
            .inject_explicit(vec![
                InjectionEntry { round: 10, source: 3 },
                InjectionEntry { round: 2, source: 16 },
                InjectionEntry { round: 3, source: 5 },
            ])
            .rumor_ttl(0)
            .build();
        match built {
            Err(ScenarioError::Invalid(msg)) => {
                assert!(msg.contains("rumor 0 injected at round 10"), "got: {msg}");
                assert!(msg.contains("rumor 1 source 16 out of range"), "got: {msg}");
                assert!(msg.contains("rumor-ttl must be at least 1"), "got: {msg}");
            }
            other => panic!("expected one Invalid listing all problems, got {other:?}"),
        }
    }

    #[test]
    fn injection_validation_rejects_bad_specs() {
        let base = || Scenario::builder("x", TopologySpec::Complete { n: 16 });
        assert!(matches!(base().inject_poisson(0, 1.0).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().inject_poisson(4, 0.0).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(
            base().inject_poisson(4, f64::NAN).build(),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(matches!(base().inject_hotspot(4, 16, 1).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().inject_hotspot(4, 0, 0).build(), Err(ScenarioError::Invalid(_))));
        // Entry count must equal the rumor count.
        assert!(matches!(
            base()
                .injection(InjectionSpec {
                    rumors: 3,
                    pattern: InjectPattern::Explicit(vec![InjectionEntry { round: 0, source: 0 }]),
                    ttl: None,
                })
                .build(),
            Err(ScenarioError::Invalid(_))
        ));
        // Streaming is push-pull-only: the phase-based protocols assume the
        // classic one-rumor-per-node start.
        assert!(matches!(
            base().protocol(ProtocolSpec::Memory).inject_poisson(4, 1.0).build(),
            Err(ScenarioError::Invalid(_))
        ));
        // TTL and the all-rumors stop rule require an injection.
        assert!(matches!(base().rumor_ttl(8).build(), Err(ScenarioError::Invalid(_))));
        assert!(matches!(base().stop(StopRule::AllRumors).build(), Err(ScenarioError::Invalid(_))));
        assert!(base().inject_poisson(4, 1.0).stop(StopRule::AllRumors).build().is_ok());
    }

    #[test]
    fn broadcast_baselines_require_an_injection_and_accept_one() {
        let base = || Scenario::builder("bcast", TopologySpec::ErdosRenyiPaper { n: 128 });
        for protocol in [ProtocolSpec::BroadcastPush, ProtocolSpec::BroadcastPushPull] {
            let rejected = base().protocol(protocol).build();
            assert!(
                matches!(rejected, Err(ScenarioError::Invalid(ref m)) if m.contains("injection")),
                "{} without injection: {rejected:?}",
                protocol.name()
            );
            let accepted = base()
                .protocol(protocol)
                .inject_explicit(vec![InjectionEntry { round: 0, source: 3 }])
                .stop(StopRule::AllRumors)
                .build();
            assert!(accepted.is_ok(), "{} with injection: {accepted:?}", protocol.name());
        }
        // Leader election is classic-start-only, like the phase-based
        // protocols.
        assert!(matches!(
            base().protocol(ProtocolSpec::LeaderElection).inject_poisson(4, 1.0).build(),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(base().protocol(ProtocolSpec::LeaderElection).build().is_ok());
    }

    #[test]
    fn parse_rejects_malformed_injection_values() {
        for line in [
            "inject = poisson:fast",
            "inject = hotspot:3",
            "inject = hotspot:3:2:1",
            "inject = 5",
            "inject = a:b",
        ] {
            let text = format!("name = x\nn = 64\nrumors = 4\n{line}\n");
            assert!(
                matches!(Scenario::parse_str(&text), Err(ScenarioError::Parse(_))),
                "accepted {line:?}"
            );
        }
        // Mixing the sampled and explicit forms is a parse error.
        for lines in ["inject = poisson:1\ninject = 2:3", "inject = 2:3\ninject = hotspot:1:2"] {
            let text = format!("name = x\nn = 64\nrumors = 4\n{lines}\n");
            assert!(
                matches!(Scenario::parse_str(&text), Err(ScenarioError::Parse(_))),
                "accepted mixed forms: {lines:?}"
            );
        }
        // `inject` / `rumor-ttl` without `rumors` are spec inconsistencies.
        assert!(matches!(
            Scenario::parse_str("name = x\nn = 64\ninject = poisson:1\n"),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(matches!(
            Scenario::parse_str("name = x\nn = 64\nrumor-ttl = 8\n"),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn names_must_survive_the_text_format() {
        let named =
            |name: &str| Scenario::builder(name, TopologySpec::ErdosRenyiPaper { n: 64 }).build();
        assert!(named("ok-name with spaces").is_ok());
        for bad in ["", " padded ", "has#comment", "two\nlines", "cr\rname"] {
            assert!(matches!(named(bad), Err(ScenarioError::Invalid(_))), "accepted {bad:?}");
        }
    }

    #[test]
    fn name_roundtrip_regression() {
        // Legal-but-tricky names survive `parse_str(to_text(s)) == s` byte
        // for byte — including '=' and ':' characters, which only have
        // special meaning left of the first '=' of a line.
        for name in ["spaces in name", "equals = inside", "colons:everywhere", "ends-with-dash-"] {
            let s =
                Scenario::builder(name, TopologySpec::ErdosRenyiPaper { n: 64 }).build().unwrap();
            assert_eq!(Scenario::parse_str(&s.to_text()).unwrap().name, name);
        }
        // A '#' in a name *value* is a comment per the grammar, so parsing
        // yields the truncated pre-'#' part — the builder therefore refuses
        // to construct a name that `to_text` could never round-trip, which is
        // what upholds the documented guarantee.
        let parsed = Scenario::parse_str("name = a#b\nn = 64").unwrap();
        assert_eq!(parsed.name, "a");
        assert!(matches!(
            Scenario::builder("a#b", TopologySpec::ErdosRenyiPaper { n: 64 }).build(),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn custom_round_caps_roundtrip_and_defaults_are_omitted() {
        let custom = Scenario::builder("capped", TopologySpec::ErdosRenyiPaper { n: 128 })
            .max_rounds(9)
            .build()
            .unwrap();
        assert!(custom.to_text().contains("max-rounds = 9"));
        assert_eq!(Scenario::parse_str(&custom.to_text()).unwrap(), custom);

        let phase = Scenario::builder("mem", TopologySpec::ErdosRenyiPaper { n: 128 })
            .protocol(ProtocolSpec::Memory)
            .build()
            .unwrap();
        assert!(!phase.to_text().contains("max-rounds"));
        assert_eq!(Scenario::parse_str(&phase.to_text()).unwrap(), phase);

        // Phase-based protocols now accept explicit caps and step-granular
        // stop rules; both must survive the text format.
        let capped_mem = Scenario::builder("mem-capped", TopologySpec::ErdosRenyiPaper { n: 128 })
            .protocol(ProtocolSpec::Memory)
            .stop(StopRule::Rounds(9))
            .max_rounds(9)
            .build()
            .unwrap();
        assert!(capped_mem.to_text().contains("max-rounds = 9"));
        assert!(capped_mem.to_text().contains("stop = rounds:9"));
        assert_eq!(Scenario::parse_str(&capped_mem.to_text()).unwrap(), capped_mem);
    }

    #[test]
    fn protocol_spec_builds_matching_algorithms() {
        for spec in [ProtocolSpec::PushPull, ProtocolSpec::FastGossiping, ProtocolSpec::Memory] {
            assert_eq!(spec.build(128).name(), spec.name());
        }
    }

    #[test]
    fn topology_spec_builds_generators_of_the_right_size() {
        let specs = [
            TopologySpec::ErdosRenyiPaper { n: 100 },
            TopologySpec::ErdosRenyiDegree { n: 100, degree: 8.0 },
            TopologySpec::RandomRegular { n: 100, degree: 4 },
            TopologySpec::Complete { n: 100 },
        ];
        for spec in specs {
            assert_eq!(spec.build().num_nodes(), 100);
            assert!(!spec.label().is_empty());
            assert!(!spec.label().contains(','), "labels must survive unquoted CSV");
        }
    }
}
