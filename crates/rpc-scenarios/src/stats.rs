//! Aggregate statistics over Monte Carlo replications.

/// Five-number summary of a sample: min, mean, max and the 50th / 90th
/// percentiles (nearest-rank on the sorted sample).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SummaryStats {
    /// Smallest observation.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
}

/// Summarises a sample. Returns all-zero stats for an empty slice.
pub fn summarize(values: &[f64]) -> SummaryStats {
    if values.is_empty() {
        return SummaryStats::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    SummaryStats {
        min: sorted[0],
        mean,
        max: sorted[sorted.len() - 1],
        p50: percentile(&sorted, 0.5),
        p90: percentile(&sorted, 0.9),
    }
}

/// Nearest-rank percentile of an already sorted sample, `q ∈ [0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p90, 5.0);
    }

    #[test]
    fn summary_of_singleton_is_the_value_everywhere() {
        let s = summarize(&[7.5]);
        assert_eq!((s.min, s.mean, s.max, s.p50, s.p90), (7.5, 7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        assert_eq!(summarize(&[]), SummaryStats::default());
    }

    #[test]
    fn summary_is_order_independent() {
        let a = summarize(&[1.0, 2.0, 9.0, 4.0]);
        let b = summarize(&[9.0, 4.0, 2.0, 1.0]);
        assert_eq!(a, b);
    }
}
