//! The adaptive sweep engine: declarative experiment grids over the scenario
//! stack.
//!
//! A [`SweepSpec`] names a grid of [`CellJob`]s — one *cell* per combination
//! of experiment axes (graph size, topology, protocol, loss, failure count,
//! …) — plus one [`RepPolicy`] saying how many seeded repetitions each cell
//! runs. [`SweepRunner`] executes the grid on the arena-backed worker pool
//! and aggregates each cell's repetitions into a [`CellResult`] inside a
//! [`SweepReport`].
//!
//! # Adaptive repetition
//!
//! With [`RepPolicy::adaptive`], a cell keeps running batches of repetitions
//! until the confidence interval of a target statistic is narrow enough (see
//! [`CiStopRule`]) or the repetition budget is exhausted. The stop decision
//! is a pure function of the cell's sample *prefix* ([`stop_index`]): the
//! runner may batch repetitions however it likes (it doubles the target per
//! round), but the chosen cut `k` — and therefore the aggregated result —
//! depends only on the first `k` samples. Surplus repetitions computed past
//! the cut are discarded, never averaged in.
//!
//! # Determinism contract
//!
//! Repetition `r` of the cell with key `key` is seeded
//! `derive_seed(spec.seed, hash_key(key), r)` — a pure function of the spec
//! seed and the cell's identity. Combined with prefix-stable stopping and the
//! task-ordered pool ([`crate::batch`]), a sweep's per-cell results are
//! bit-identical for **any** thread count, any batch granularity, and any
//! subset of cells served from cache.
//!
//! # Cell cache
//!
//! With [`SweepRunner::with_cache`], finished cells are persisted to a text
//! file keyed by cell key and fingerprinted over everything that determines
//! the numbers (spec seed, repetition policy, the job itself). Reruns skip
//! cells whose fingerprint matches and reproduce their results exactly;
//! fingerprint mismatches rerun the cell and overwrite the entry.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rpc_engine::{derive_seed, hash_key};
use rpc_obs::{NoopObserver, ObsEvent, Observer};

use crate::batch::{run_on_pool, StoppedByCounts};
use crate::cells::{run_cell_meta, CellJob, RepMeta, RepOutcome};
use crate::spec::ScenarioError;
use crate::stats::{summarize, SummaryStats};

/// The default normal quantile: a 95% two-sided interval.
pub const DEFAULT_Z: f64 = 1.96;

// ---------------------------------------------------------------------------
// Axis helpers
// ---------------------------------------------------------------------------

/// Geometric sweep of graph sizes between `min_n` and `max_n` (both rounded to
/// powers of two), mirroring the log-scaled x-axis of Figures 1 and 4.
pub fn size_sweep(min_n: usize, max_n: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut n = min_n.next_power_of_two().max(2);
    let max = max_n.max(n);
    while n <= max {
        sizes.push(n);
        n *= 2;
    }
    sizes
}

/// Geometric sweep with intermediate points (`×2` and `×3` per octave), used
/// by the Figure 4 detail plot.
pub fn dense_size_sweep(min_n: usize, max_n: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut base = min_n.next_power_of_two().max(2);
    while base <= max_n {
        sizes.push(base);
        let mid = base + base / 2;
        if mid <= max_n {
            sizes.push(mid);
        }
        base *= 2;
    }
    sizes
}

/// Failure-count sweep used by Figures 2 and 3: roughly log-spaced values from
/// `min_f` to `max_f`.
pub fn failure_sweep(min_f: usize, max_f: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut f = min_f.max(1);
    while f <= max_f {
        out.push(f);
        let next = (f as f64 * 2.0).round() as usize;
        f = next.max(f + 1);
    }
    out
}

/// Arithmetic failure sweep used by Figure 5 (`0, step, 2·step, …`).
pub fn arithmetic_failure_sweep(step: usize, max_f: usize) -> Vec<usize> {
    (0..=max_f / step.max(1)).map(|k| k * step).collect()
}

// ---------------------------------------------------------------------------
// Repetition policy
// ---------------------------------------------------------------------------

/// The confidence-interval stop rule of an adaptive sweep: stop a cell once
/// the two-sided CI half-width of `metric`'s mean, `z·sd/√k`, is within the
/// tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct CiStopRule {
    /// The target statistic (a metric name produced by every repetition of
    /// every cell, e.g. `packets_per_node`).
    pub metric: String,
    /// Normal quantile scaling the half-width (1.96 ≈ 95%).
    pub z: f64,
    /// Tolerance on the half-width. Interpreted relative to `|mean|` when
    /// [`Self::relative`], absolute otherwise.
    pub tolerance: f64,
    /// Whether [`Self::tolerance`] is a fraction of the running `|mean|`
    /// rather than an absolute width.
    pub relative: bool,
}

impl CiStopRule {
    /// Stop once the 95% half-width is within `tolerance · |mean|`.
    pub fn relative(metric: impl Into<String>, tolerance: f64) -> Self {
        Self { metric: metric.into(), z: DEFAULT_Z, tolerance, relative: true }
    }

    /// Stop once the 95% half-width is within the absolute `tolerance`.
    pub fn absolute(metric: impl Into<String>, tolerance: f64) -> Self {
        Self { metric: metric.into(), z: DEFAULT_Z, tolerance, relative: false }
    }

    /// Overrides the normal quantile (default [`DEFAULT_Z`]).
    pub fn with_z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }
}

/// How many seeded repetitions each cell of a sweep runs.
#[derive(Clone, Debug, PartialEq)]
pub struct RepPolicy {
    /// Repetitions every cell runs at least (≥ 2 when adaptive, so a
    /// standard deviation exists).
    pub min_reps: usize,
    /// Hard per-cell repetition budget.
    pub max_reps: usize,
    /// The adaptive stop rule; `None` means exactly
    /// [`Self::max_reps`] (= [`Self::min_reps`]) repetitions.
    pub ci: Option<CiStopRule>,
}

impl RepPolicy {
    /// Exactly `reps` repetitions per cell (clamped to ≥ 1), no early stop.
    pub fn fixed(reps: usize) -> Self {
        let reps = reps.max(1);
        Self { min_reps: reps, max_reps: reps, ci: None }
    }

    /// Between `min_reps` (clamped to ≥ 2) and `max_reps` repetitions per
    /// cell, stopping early once `ci` is satisfied.
    pub fn adaptive(min_reps: usize, max_reps: usize, ci: CiStopRule) -> Self {
        let min_reps = min_reps.max(2);
        Self { min_reps, max_reps: max_reps.max(min_reps), ci: Some(ci) }
    }

    /// The normal quantile used for reported CI half-widths ([`DEFAULT_Z`]
    /// when no adaptive rule is set).
    pub fn ci_z(&self) -> f64 {
        self.ci.as_ref().map_or(DEFAULT_Z, |ci| ci.z)
    }

    /// Everything about the policy that affects a cell's aggregated numbers,
    /// rendered for cache fingerprinting.
    fn fingerprint_text(&self) -> String {
        match &self.ci {
            None => format!("fixed min={} max={}", self.min_reps, self.max_reps),
            Some(ci) => format!(
                "adaptive min={} max={} metric={} z={} tol={} relative={}",
                self.min_reps, self.max_reps, ci.metric, ci.z, ci.tolerance, ci.relative
            ),
        }
    }
}

/// The prefix-stable stop decision: the smallest admissible repetition count
/// `k` at which the cell may stop, given the target statistic's samples in
/// repetition order.
///
/// Returns `Some((k, budget_exhausted))` once a decision exists:
///
/// * with a CI rule, the smallest `k ∈ [max(min_reps, 2), max_reps]` whose
///   prefix half-width `z·sd(values[..k])/√k` is within the tolerance
///   (`budget_exhausted = false`), or `(max_reps, true)` once the budget is
///   spent without convergence;
/// * without one, `(max_reps, false)` as soon as enough samples exist
///   (`values` themselves are ignored — only their count matters).
///
/// Returns `None` while more repetitions are needed. The decision depends
/// only on `values[..k]`, never on later samples, so any batching schedule
/// that eventually reaches `max_reps` selects the same cut — this is what
/// makes adaptive sweeps bit-identical across thread counts and batch sizes.
pub fn stop_index(values: &[f64], policy: &RepPolicy) -> Option<(usize, bool)> {
    let max = policy.max_reps;
    let Some(ci) = &policy.ci else {
        return (values.len() >= max).then_some((max, false));
    };
    let lo = policy.min_reps.max(2);
    // Streaming prefix mean / M2 (Welford): the k-th iteration sees exactly
    // the statistics of values[..k].
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for (i, &v) in values.iter().take(max).enumerate() {
        let k = i + 1;
        let delta = v - mean;
        mean += delta / k as f64;
        m2 += delta * (v - mean);
        if k >= lo {
            let sd = (m2 / (k - 1) as f64).sqrt();
            let half = ci.z * sd / (k as f64).sqrt();
            let tolerance = if ci.relative { ci.tolerance * mean.abs() } else { ci.tolerance };
            if half <= tolerance {
                return Some((k, false));
            }
        }
    }
    (values.len() >= max).then_some((max, true))
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// One cell of a sweep: a stable key, the axis coordinates it reports under,
/// and the workload each repetition runs.
#[derive(Clone, Debug)]
pub struct SpecCell {
    /// Stable identity: `<spec-name>/<axis>=<value>/…`. Seeds and cache
    /// entries key off this, so results survive grid reordering.
    pub key: String,
    /// `(axis name, value)` pairs, in declaration order.
    pub axes: Vec<(String, String)>,
    /// The per-repetition workload.
    pub job: CellJob,
}

/// A declarative sweep: a named grid of cells plus the repetition policy.
///
/// Build one cell-by-cell with [`SweepSpec::new`] + [`SweepSpec::push_cell`],
/// or as a cross product with [`SweepSpec::grid`].
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Sweep name; prefixes every cell key.
    pub name: String,
    /// Base seed of the whole sweep.
    pub seed: u64,
    /// Repetition policy applied to every cell.
    pub policy: RepPolicy,
    cells: Vec<SpecCell>,
}

impl SweepSpec {
    /// An empty sweep.
    ///
    /// # Panics
    ///
    /// When `name` is empty or contains whitespace, `#`, `,` or `/` — cell
    /// keys derived from it must survive the cache and CSV formats.
    pub fn new(name: impl Into<String>, seed: u64, policy: RepPolicy) -> Self {
        let name = name.into();
        validate_token(&name, "sweep name").expect("invalid sweep name");
        Self { name, seed, policy, cells: Vec::new() }
    }

    /// Starts a cross-product grid over named axes.
    pub fn grid(name: impl Into<String>, seed: u64, policy: RepPolicy) -> GridBuilder {
        GridBuilder { spec: SweepSpec::new(name, seed, policy), axes: Vec::new() }
    }

    /// Appends one cell with explicit axis coordinates.
    ///
    /// Validates the job, the axis tokens (no whitespace, `#`, `,` or `/`;
    /// axis names additionally exclude `=`) and key uniqueness.
    pub fn push_cell(
        &mut self,
        axes: Vec<(String, String)>,
        job: CellJob,
    ) -> Result<(), ScenarioError> {
        job.validate()?;
        let mut key = self.name.clone();
        for (axis, value) in &axes {
            validate_token(axis, "axis name")?;
            if axis.contains('=') {
                return Err(ScenarioError::Invalid(format!("axis name {axis:?} contains '='")));
            }
            validate_token(value, "axis value")?;
            write!(key, "/{axis}={value}").expect("string write is infallible");
        }
        if self.cells.iter().any(|c| c.key == key) {
            return Err(ScenarioError::Invalid(format!("duplicate sweep cell key {key:?}")));
        }
        self.cells.push(SpecCell { key, axes, job });
        Ok(())
    }

    /// The cells, in declaration order.
    pub fn cells(&self) -> &[SpecCell] {
        &self.cells
    }
}

/// Checks that a key component survives the cell-cache and CSV formats.
fn validate_token(token: &str, what: &str) -> Result<(), ScenarioError> {
    if token.is_empty() {
        return Err(ScenarioError::Invalid(format!("{what} is empty")));
    }
    if let Some(bad) = token.chars().find(|c| c.is_whitespace() || matches!(c, '#' | ',' | '/')) {
        return Err(ScenarioError::Invalid(format!("{what} {token:?} contains {bad:?}")));
    }
    Ok(())
}

/// One coordinate of a grid: the value of every axis, as declared.
#[derive(Clone, Debug)]
pub struct AxisPoint {
    axes: Vec<(String, String)>,
}

impl AxisPoint {
    /// The value of `axis`.
    ///
    /// # Panics
    ///
    /// When the grid declares no such axis (a spec-construction bug).
    pub fn get(&self, axis: &str) -> &str {
        self.axes
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("grid has no axis {axis:?}"))
    }

    /// The value of `axis`, parsed.
    ///
    /// # Panics
    ///
    /// When the axis is missing or its value does not parse as `T`.
    pub fn parse<T>(&self, axis: &str) -> T
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Debug,
    {
        let raw = self.get(axis);
        raw.parse().unwrap_or_else(|e| panic!("axis {axis}={raw:?} did not parse: {e:?}"))
    }
}

/// Builder for cross-product sweeps: declare axes, then map every grid point
/// to a job.
#[derive(Clone, Debug)]
pub struct GridBuilder {
    spec: SweepSpec,
    axes: Vec<(String, Vec<String>)>,
}

impl GridBuilder {
    /// Declares an axis with the given values (rendered with `ToString`).
    /// Axes iterate in declaration order, the last axis fastest.
    pub fn axis<T: ToString>(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = T>,
    ) -> Self {
        self.axes.push((name.into(), values.into_iter().map(|v| v.to_string()).collect()));
        self
    }

    /// Enumerates the cross product and appends one cell per point for which
    /// `make_job` returns a job (`None` skips the point — holes in the grid
    /// are fine).
    pub fn cells<F>(self, make_job: F) -> Result<SweepSpec, ScenarioError>
    where
        F: Fn(&AxisPoint) -> Option<CellJob>,
    {
        let GridBuilder { mut spec, axes } = self;
        if axes.iter().any(|(_, values)| values.is_empty()) {
            return Ok(spec); // an empty axis empties the whole product
        }
        let mut odometer = vec![0usize; axes.len()];
        loop {
            let point = AxisPoint {
                axes: axes
                    .iter()
                    .zip(&odometer)
                    .map(|((name, values), &i)| (name.clone(), values[i].clone()))
                    .collect(),
            };
            if let Some(job) = make_job(&point) {
                spec.push_cell(point.axes, job)?;
            }
            // Advance the odometer, last axis fastest.
            let mut digit = axes.len();
            loop {
                if digit == 0 {
                    return Ok(spec);
                }
                digit -= 1;
                odometer[digit] += 1;
                if odometer[digit] < axes[digit].1.len() {
                    break;
                }
                odometer[digit] = 0;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// The aggregated statistics of one metric over a cell's repetitions.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSummary {
    /// Metric name, as produced by [`RepOutcome`].
    pub name: String,
    /// Five-number summary of the samples.
    pub stats: SummaryStats,
    /// Sample standard deviation (`k-1` denominator; 0 below two samples).
    pub sd: f64,
    /// CI half-width of the mean, `z·sd/√k`, at the report's `z`.
    pub ci_half: f64,
}

/// One cell's aggregated result.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// The cell's stable key.
    pub key: String,
    /// Axis coordinates, as declared in the spec.
    pub axes: Vec<(String, String)>,
    /// Repetitions aggregated (the adaptive cut `k`).
    pub reps: usize,
    /// Whether an adaptive cell spent its whole budget without the CI rule
    /// converging (always `false` for fixed policies).
    pub budget_exhausted: bool,
    /// Repetitions by [`crate::StoppedBy`] discriminant.
    pub stopped: StoppedByCounts,
    /// Per-metric summaries, in the metrics' first-seen order.
    pub metrics: Vec<MetricSummary>,
    /// Whether this result was served from the cell cache instead of being
    /// recomputed. Cached results are bit-identical to recomputed ones.
    pub from_cache: bool,
}

impl CellResult {
    /// The summary of one metric, if the cell produced it.
    pub fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Convenience: one metric's mean, if the cell produced it.
    pub fn mean(&self, name: &str) -> Option<f64> {
        self.metric(name).map(|m| m.stats.mean)
    }

    /// One axis's value, if the cell declares it.
    pub fn axis(&self, name: &str) -> Option<&str> {
        self.axes.iter().find(|(a, _)| a == name).map(|(_, v)| v.as_str())
    }
}

/// The result of one sweep: every cell's aggregate, in spec order.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// The spec's name.
    pub spec_name: String,
    /// The normal quantile behind every `ci_half` column.
    pub ci_z: f64,
    /// Per-cell results, in spec order.
    pub cells: Vec<CellResult>,
    /// Simulations actually executed by this run — includes surplus
    /// repetitions past an adaptive cut (computed, then discarded) and
    /// excludes cache-served cells. This is the cost measure adaptive
    /// stopping reduces.
    pub executed_reps: usize,
    /// Cells served from the cell cache.
    pub cached_cells: usize,
}

impl SweepReport {
    /// Total repetitions aggregated into the report (`Σ cell.reps`),
    /// independent of caching and surplus.
    pub fn total_reps(&self) -> usize {
        self.cells.iter().map(|c| c.reps).sum()
    }

    /// Union of metric names across cells, in first-seen order.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for cell in &self.cells {
            for metric in &cell.metrics {
                if !names.contains(&metric.name.as_str()) {
                    names.push(&metric.name);
                }
            }
        }
        names
    }

    /// Serialises the report as JSON (hand-rolled; the repo carries no serde
    /// dependency). Floats render in Rust's shortest round-trip form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        write!(
            out,
            "\"spec\":{},\"ci_z\":{},\"executed_reps\":{},\"cached_cells\":{},\"cells\":[",
            json_string(&self.spec_name),
            self.ci_z,
            self.executed_reps,
            self.cached_cells
        )
        .unwrap();
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"key\":{},\"reps\":{},\"budget_exhausted\":{},\"from_cache\":{},",
                json_string(&cell.key),
                cell.reps,
                cell.budget_exhausted,
                cell.from_cache
            )
            .unwrap();
            out.push_str("\"axes\":{");
            for (j, (axis, value)) in cell.axes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "{}:{}", json_string(axis), json_string(value)).unwrap();
            }
            let s = cell.stopped;
            write!(
                out,
                "}},\"stopped\":{{\"complete\":{},\"round_budget\":{},\"coverage\":{},\
                 \"max_rounds\":{}}},\"metrics\":{{",
                s.complete, s.round_budget, s.coverage, s.max_rounds
            )
            .unwrap();
            for (j, m) in cell.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(
                    out,
                    "{}:{{\"min\":{},\"mean\":{},\"max\":{},\"p50\":{},\"p90\":{},\"sd\":{},\
                     \"ci_half\":{}}}",
                    json_string(&m.name),
                    m.stats.min,
                    m.stats.mean,
                    m.stats.max,
                    m.stats.p50,
                    m.stats.p90,
                    m.sd,
                    m.ci_half
                )
                .unwrap();
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sample standard deviation (`k-1` denominator; 0 below two samples).
fn sample_sd(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let ss: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    (ss / (values.len() - 1) as f64).sqrt()
}

fn ci_half_width(z: f64, sd: f64, reps: usize) -> f64 {
    if reps == 0 {
        0.0
    } else {
        z * sd / (reps as f64).sqrt()
    }
}

// ---------------------------------------------------------------------------
// Cell cache
// ---------------------------------------------------------------------------

const CACHE_HEADER: &str = "# sweep cell cache v1";

#[derive(Clone, Debug, PartialEq)]
struct CacheEntry {
    fingerprint: u64,
    reps: usize,
    budget_exhausted: bool,
    stopped: StoppedByCounts,
    /// `(name, five-number summary, sample sd)` per metric, in order.
    metrics: Vec<(String, SummaryStats, f64)>,
}

impl CacheEntry {
    fn to_result(&self, cell: &SpecCell, z: f64) -> CellResult {
        CellResult {
            key: cell.key.clone(),
            axes: cell.axes.clone(),
            reps: self.reps,
            budget_exhausted: self.budget_exhausted,
            stopped: self.stopped,
            metrics: self
                .metrics
                .iter()
                .map(|(name, stats, sd)| MetricSummary {
                    name: name.clone(),
                    stats: *stats,
                    sd: *sd,
                    ci_half: ci_half_width(z, *sd, self.reps),
                })
                .collect(),
            from_cache: true,
        }
    }
}

/// The persistent cell store behind [`SweepRunner::with_cache`]: a
/// line-oriented text file, one block per finished cell, floats in Rust's
/// shortest round-trip rendering (so reload is exact). Loading is lenient —
/// malformed blocks are dropped, which at worst recomputes their cells.
#[derive(Clone, Debug, Default, PartialEq)]
struct CellCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl CellCache {
    fn load(path: &Path) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Self::default();
        };
        let mut cache = Self::default();
        let mut current: Option<(String, Vec<&str>)> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(key) = line.strip_prefix("cell ") {
                current = Some((key.to_string(), Vec::new()));
            } else if line == "end" {
                if let Some((key, fields)) = current.take() {
                    if let Some(entry) = parse_entry(&fields) {
                        cache.entries.insert(key, entry);
                    }
                }
            } else if let Some((_, fields)) = current.as_mut() {
                fields.push(line);
            }
        }
        cache
    }

    fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = String::from(CACHE_HEADER);
        out.push('\n');
        for (key, e) in &self.entries {
            writeln!(out, "cell {key}").unwrap();
            writeln!(out, "fp {:016x}", e.fingerprint).unwrap();
            writeln!(out, "reps {}", e.reps).unwrap();
            writeln!(out, "exhausted {}", u8::from(e.budget_exhausted)).unwrap();
            let s = e.stopped;
            writeln!(
                out,
                "stopped {} {} {} {} {}",
                s.complete, s.round_budget, s.coverage, s.all_rumors, s.max_rounds
            )
            .unwrap();
            for (name, st, sd) in &e.metrics {
                writeln!(
                    out,
                    "metric {name} {} {} {} {} {} {sd}",
                    st.min, st.mean, st.max, st.p50, st.p90
                )
                .unwrap();
            }
            out.push_str("end\n");
        }
        // Write-then-rename so an interrupt (Ctrl-C, SIGTERM, OOM-kill) mid
        // write can never leave a truncated cache at `path`: the reader either
        // sees the previous complete file or the new complete file. The
        // temporary lives in the same directory, so the rename stays on one
        // filesystem (atomic on POSIX).
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Don't leave the orphan behind; the save still failed.
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

fn parse_entry(fields: &[&str]) -> Option<CacheEntry> {
    let mut fingerprint = None;
    let mut reps = None;
    let mut budget_exhausted = None;
    let mut stopped = None;
    let mut metrics = Vec::new();
    for field in fields {
        let mut parts = field.split_ascii_whitespace();
        match parts.next()? {
            "fp" => fingerprint = Some(u64::from_str_radix(parts.next()?, 16).ok()?),
            "reps" => reps = Some(parts.next()?.parse().ok()?),
            "exhausted" => budget_exhausted = Some(parts.next()? == "1"),
            "stopped" => {
                let mut next = || parts.next().and_then(|p| p.parse().ok());
                stopped = Some(StoppedByCounts {
                    complete: next()?,
                    round_budget: next()?,
                    coverage: next()?,
                    all_rumors: next()?,
                    max_rounds: next()?,
                });
            }
            "metric" => {
                let name = parts.next()?.to_string();
                let mut next = || parts.next().and_then(|p| p.parse::<f64>().ok());
                let stats = SummaryStats {
                    min: next()?,
                    mean: next()?,
                    max: next()?,
                    p50: next()?,
                    p90: next()?,
                };
                metrics.push((name, stats, next()?));
            }
            _ => return None,
        }
    }
    Some(CacheEntry {
        fingerprint: fingerprint?,
        reps: reps?,
        budget_exhausted: budget_exhausted?,
        stopped: stopped?,
        metrics,
    })
}

/// Everything that determines a cell's numbers, folded to one word: the spec
/// seed, the repetition policy, the cell key (which seeds repetitions) and
/// the workload. A cached entry is valid only while this matches.
fn cell_fingerprint(spec: &SweepSpec, cell: &SpecCell) -> u64 {
    let text = format!(
        "seed={}\npolicy={}\nkey={}\njob={}",
        spec.seed,
        spec.policy.fingerprint_text(),
        cell.key,
        cell.job.fingerprint_text()
    );
    hash_key(text.as_bytes())
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Executes [`SweepSpec`]s on the arena-backed worker pool.
#[derive(Clone, Debug)]
pub struct SweepRunner {
    threads: usize,
    cache_path: Option<PathBuf>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner with one worker per available CPU and no cache.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Self { threads, cache_path: None }
    }

    /// Overrides the worker-thread count (clamped to ≥ 1). Results are
    /// bit-identical for any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Persists finished cells to `path` and serves matching cells from it on
    /// reruns. Served results are bit-identical to recomputation.
    pub fn with_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the sweep: serves fingerprint-matching cells from the cache,
    /// fans fresh repetitions across the pool in doubling batches until every
    /// cell's [`stop_index`] decides, aggregates, and (when caching) persists
    /// the finished cells.
    ///
    /// # Panics
    ///
    /// When an adaptive policy targets a metric some cell never produces, or
    /// when the cache file cannot be written.
    pub fn run(&self, spec: &SweepSpec) -> SweepReport {
        self.run_with(spec, &mut NoopObserver)
    }

    /// [`SweepRunner::run`] with an attached [`Observer`] receiving the
    /// sweep's lifecycle event stream: cells started or served from cache,
    /// batches scheduled, repetitions finished (with per-repetition
    /// wall-clock), CI stops, and cells finished.
    ///
    /// All events are emitted from the coordinator thread in deterministic
    /// task order; workers only measure wall-clock (and only when the
    /// observer is enabled), so the report is bit-identical to [`run`]'s —
    /// wall-clock never feeds back into any seeded path.
    ///
    /// [`run`]: SweepRunner::run
    pub fn run_with<O: Observer>(&self, spec: &SweepSpec, obs: &mut O) -> SweepReport {
        let z = spec.policy.ci_z();
        let mut cache = self.cache_path.as_deref().map(CellCache::load).unwrap_or_default();

        if O::ENABLED {
            obs.record(&ObsEvent::SweepStarted {
                sweep: &spec.name,
                cells: spec.cells.len(),
                threads: self.threads,
            });
        }

        let mut results: Vec<Option<CellResult>> = vec![None; spec.cells.len()];
        let mut cached_cells = 0;
        // (cell index, samples so far, current repetition target)
        let mut pending: Vec<(usize, Vec<RepOutcome>, usize)> = Vec::new();
        for (idx, cell) in spec.cells.iter().enumerate() {
            let served = cache
                .entries
                .get(&cell.key)
                .filter(|e| e.fingerprint == cell_fingerprint(spec, cell))
                .map(|e| e.to_result(cell, z));
            match served {
                Some(result) => {
                    if O::ENABLED {
                        obs.record(&ObsEvent::CacheHit {
                            sweep: &spec.name,
                            cell: &cell.key,
                            reps: result.reps,
                        });
                        obs.record(&ObsEvent::CellFinished {
                            sweep: &spec.name,
                            cell: &cell.key,
                            reps: result.reps,
                            cached: true,
                        });
                    }
                    results[idx] = Some(result);
                    cached_cells += 1;
                }
                None => {
                    if O::ENABLED {
                        obs.record(&ObsEvent::CellStarted {
                            sweep: &spec.name,
                            cell: &cell.key,
                            index: idx,
                            target_reps: spec.policy.min_reps,
                        });
                    }
                    pending.push((idx, Vec::new(), spec.policy.min_reps));
                }
            }
        }

        let mut executed_reps = 0;
        while !pending.is_empty() {
            // One batch: top every undecided cell up to its current target.
            let tasks: Vec<(usize, usize, usize)> = pending
                .iter()
                .enumerate()
                .flat_map(|(slot, (idx, samples, target))| {
                    (samples.len()..*target).map(move |rep| (slot, *idx, rep))
                })
                .collect();
            if O::ENABLED {
                obs.record(&ObsEvent::BatchScheduled { sweep: &spec.name, tasks: tasks.len() });
            }
            let outcomes = run_on_pool(&tasks, self.threads, |arena, &(_, idx, rep)| {
                let cell = &spec.cells[idx];
                let seed = derive_seed(spec.seed, hash_key(cell.key.as_bytes()), rep as u64);
                // Wall-clock is measured only when an observer is attached,
                // and flows only into the event stream — never into results.
                let started = O::ENABLED.then(std::time::Instant::now);
                let (outcome, meta) = run_cell_meta(arena, &cell.job, seed);
                let wall_nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                (outcome, meta, wall_nanos)
            });
            executed_reps += tasks.len();
            for (&(slot, idx, rep), (outcome, meta, wall_nanos)) in tasks.iter().zip(outcomes) {
                if O::ENABLED {
                    let RepMeta { rounds, cores } = meta;
                    obs.record(&ObsEvent::RepFinished {
                        sweep: &spec.name,
                        cell: &spec.cells[idx].key,
                        rep,
                        wall_nanos,
                        rounds,
                        cores,
                    });
                }
                pending[slot].1.push(outcome);
            }

            pending.retain_mut(|(idx, samples, target)| {
                let cell = &spec.cells[*idx];
                let values: Vec<f64> = match &spec.policy.ci {
                    Some(ci) => samples
                        .iter()
                        .map(|s| {
                            s.metric(&ci.metric).unwrap_or_else(|| {
                                panic!(
                                    "adaptive stop metric {:?} is not produced by cell {:?}",
                                    ci.metric, cell.key
                                )
                            })
                        })
                        .collect(),
                    None => vec![0.0; samples.len()],
                };
                match stop_index(&values, &spec.policy) {
                    Some((k, budget_exhausted)) => {
                        samples.truncate(k);
                        if O::ENABLED {
                            if spec.policy.ci.is_some() && !budget_exhausted {
                                obs.record(&ObsEvent::CiStop {
                                    sweep: &spec.name,
                                    cell: &cell.key,
                                    reps: k,
                                });
                            }
                            obs.record(&ObsEvent::CellFinished {
                                sweep: &spec.name,
                                cell: &cell.key,
                                reps: k,
                                cached: false,
                            });
                        }
                        results[*idx] = Some(finalize(cell, samples, budget_exhausted, z));
                        false
                    }
                    None => {
                        *target = (*target * 2).min(spec.policy.max_reps);
                        true
                    }
                }
            });
        }

        let cells: Vec<CellResult> =
            results.into_iter().map(|r| r.expect("every cell decided")).collect();

        if let Some(path) = &self.cache_path {
            for (cell, result) in spec.cells.iter().zip(&cells) {
                if result.from_cache {
                    continue;
                }
                cache.entries.insert(
                    cell.key.clone(),
                    CacheEntry {
                        fingerprint: cell_fingerprint(spec, cell),
                        reps: result.reps,
                        budget_exhausted: result.budget_exhausted,
                        stopped: result.stopped,
                        metrics: result
                            .metrics
                            .iter()
                            .map(|m| (m.name.clone(), m.stats, m.sd))
                            .collect(),
                    },
                );
            }
            cache.save(path).unwrap_or_else(|e| panic!("cannot write cell cache {path:?}: {e}"));
        }

        if O::ENABLED {
            obs.record(&ObsEvent::SweepFinished {
                sweep: &spec.name,
                cells: spec.cells.len(),
                executed_reps,
                cached_cells,
            });
        }

        SweepReport { spec_name: spec.name.clone(), ci_z: z, cells, executed_reps, cached_cells }
    }
}

/// Aggregates one cell's (already truncated) samples.
fn finalize(cell: &SpecCell, samples: &[RepOutcome], budget_exhausted: bool, z: f64) -> CellResult {
    let mut stopped = StoppedByCounts::default();
    for sample in samples {
        stopped.record(sample.stopped_by);
    }
    let mut names: Vec<&str> = Vec::new();
    for sample in samples {
        for (name, _) in &sample.metrics {
            if !names.contains(&name.as_str()) {
                names.push(name);
            }
        }
    }
    let metrics = names
        .into_iter()
        .map(|name| {
            let values: Vec<f64> = samples.iter().map(|s| s.metric(name).unwrap_or(0.0)).collect();
            let sd = sample_sd(&values);
            MetricSummary {
                name: name.to_string(),
                stats: summarize(&values),
                sd,
                ci_half: ci_half_width(z, sd, values.len()),
            }
        })
        .collect();
    CellResult {
        key: cell.key.clone(),
        axes: cell.axes.clone(),
        reps: samples.len(),
        budget_exhausted,
        stopped,
        metrics,
        from_cache: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Scenario, TopologySpec};

    fn tiny_job(n: usize) -> CellJob {
        CellJob::scenario(
            Scenario::builder("cell", TopologySpec::ErdosRenyiPaper { n }).build().unwrap(),
        )
    }

    #[test]
    fn size_sweep_doubles() {
        assert_eq!(size_sweep(1024, 8192), vec![1024, 2048, 4096, 8192]);
        assert_eq!(size_sweep(1000, 1000), vec![1024]);
    }

    #[test]
    fn dense_sweep_adds_midpoints() {
        assert_eq!(dense_size_sweep(1024, 4096), vec![1024, 1536, 2048, 3072, 4096]);
    }

    #[test]
    fn failure_sweep_is_increasing_and_bounded() {
        let sweep = failure_sweep(10, 1000);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*sweep.first().unwrap(), 10);
        assert!(*sweep.last().unwrap() <= 1000);
    }

    #[test]
    fn arithmetic_sweep_includes_zero() {
        assert_eq!(arithmetic_failure_sweep(100, 350), vec![0, 100, 200, 300]);
    }

    #[test]
    fn fixed_policy_stops_exactly_at_the_budget() {
        let policy = RepPolicy::fixed(4);
        assert_eq!(stop_index(&[0.0; 3], &policy), None);
        assert_eq!(stop_index(&[0.0; 4], &policy), Some((4, false)));
        assert_eq!(stop_index(&[0.0; 9], &policy), Some((4, false)), "surplus is ignored");
    }

    #[test]
    fn ci_rule_fires_at_the_documented_width() {
        // Samples [0, 4, 2, 2]: prefix half-widths at z = 1.96 are
        // k=2: sd = 2·√2, half ≈ 3.92;  k=3: sd = 2, half ≈ 2.26;
        // k=4: sd = √(8/3), half = 1.96·√(8/3)/2 ≈ 1.60.
        let values = [0.0, 4.0, 2.0, 2.0, 9.0, 9.0];
        let policy = |tol: f64| RepPolicy::adaptive(2, 6, CiStopRule::absolute("m", tol));
        assert_eq!(stop_index(&values, &policy(4.0)), Some((2, false)));
        assert_eq!(stop_index(&values, &policy(2.3)), Some((3, false)));
        assert_eq!(stop_index(&values, &policy(1.7)), Some((4, false)));
        // Too tight to ever converge on these samples: budget exhausted.
        assert_eq!(stop_index(&values, &policy(0.001)), Some((6, true)));
        // The documented boundary is inclusive: half-width exactly equal to
        // the tolerance fires.
        let exact = 1.96 * (8.0f64 / 3.0).sqrt() / 2.0;
        assert_eq!(stop_index(&values, &policy(exact)), Some((4, false)));
    }

    #[test]
    fn ci_decision_is_prefix_stable() {
        // Appending samples never changes an already-made decision.
        let values = [5.0, 5.0, 1.0, 9.0, 2.0, 8.0];
        let policy = RepPolicy::adaptive(2, 64, CiStopRule::absolute("m", 0.5));
        let early = stop_index(&values[..2], &policy);
        assert_eq!(early, Some((2, false)), "constant prefix has zero width");
        for len in 3..=values.len() {
            assert_eq!(stop_index(&values[..len], &policy), early);
        }
    }

    #[test]
    fn relative_rule_scales_with_the_mean() {
        let narrow = [100.0, 101.0];
        let policy = RepPolicy::adaptive(2, 8, CiStopRule::relative("m", 0.05));
        // half ≈ 1.96·0.707/1.414 ≈ 0.98; 5% of 100.5 ≈ 5.02 → stops at 2.
        assert_eq!(stop_index(&narrow, &policy), Some((2, false)));
        let wide = [10.0, 200.0];
        // Same spread relative rule: half ≈ 186 ≫ 5% of 105 → keeps going.
        assert_eq!(stop_index(&wide, &policy), None);
    }

    #[test]
    fn zero_variance_zero_mean_fires_immediately() {
        let policy = RepPolicy::adaptive(2, 8, CiStopRule::relative("m", 0.01));
        assert_eq!(stop_index(&[0.0, 0.0], &policy), Some((2, false)));
    }

    #[test]
    fn adaptive_policy_clamps_to_two_minimum_reps() {
        let policy = RepPolicy::adaptive(0, 0, CiStopRule::relative("m", 0.1));
        assert_eq!((policy.min_reps, policy.max_reps), (2, 2));
        assert_eq!(RepPolicy::fixed(0).max_reps, 1);
    }

    #[test]
    fn grid_builder_enumerates_the_cross_product_last_axis_fastest() {
        let spec = SweepSpec::grid("g", 1, RepPolicy::fixed(1))
            .axis("n", [64usize, 128])
            .axis("p", ["a", "b"])
            .cells(|point| {
                let n: usize = point.parse("n");
                (point.get("p") != "b" || n != 64).then(|| tiny_job(n))
            })
            .unwrap();
        let keys: Vec<&str> = spec.cells().iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, ["g/n=64/p=a", "g/n=128/p=a", "g/n=128/p=b"]);
        assert_eq!(
            spec.cells()[0].axes,
            vec![("n".to_string(), "64".to_string()), ("p".to_string(), "a".to_string())]
        );
    }

    #[test]
    fn push_cell_rejects_duplicate_keys_and_bad_tokens() {
        let mut spec = SweepSpec::new("s", 1, RepPolicy::fixed(1));
        let axes = vec![("n".to_string(), "64".to_string())];
        spec.push_cell(axes.clone(), tiny_job(64)).unwrap();
        assert!(spec.push_cell(axes, tiny_job(64)).is_err(), "duplicate key");
        for bad in ["has space", "has,comma", "has#hash", "has/slash", ""] {
            let axes = vec![("a".to_string(), bad.to_string())];
            assert!(spec.push_cell(axes, tiny_job(64)).is_err(), "accepted value {bad:?}");
        }
        let eq_axis = vec![("a=b".to_string(), "v".to_string())];
        assert!(spec.push_cell(eq_axis, tiny_job(64)).is_err(), "axis name with '='");
        assert!(
            spec.push_cell(vec![], CellJob::MemoryFailure { n: 8, failures: 99, trees: 1 })
                .is_err(),
            "invalid job"
        );
    }

    #[test]
    fn axis_values_may_contain_equals_signs() {
        // Topology labels like er-paper(n=1024) are legal axis values.
        let mut spec = SweepSpec::new("s", 1, RepPolicy::fixed(1));
        spec.push_cell(
            vec![("topology".to_string(), "er-paper(n=1024)".to_string())],
            tiny_job(64),
        )
        .unwrap();
        assert_eq!(spec.cells()[0].key, "s/topology=er-paper(n=1024)");
    }

    #[test]
    fn cache_round_trips_awkward_floats_exactly() {
        let entry = CacheEntry {
            fingerprint: 0xdead_beef_0123_4567,
            reps: 7,
            budget_exhausted: true,
            stopped: StoppedByCounts {
                complete: 4,
                round_budget: 1,
                coverage: 0,
                all_rumors: 3,
                max_rounds: 2,
            },
            metrics: vec![
                (
                    "m".to_string(),
                    SummaryStats {
                        min: 0.1 + 0.2,
                        mean: 1.0 / 3.0,
                        max: f64::MAX,
                        p50: 5e-324,
                        p90: -0.0,
                    },
                    1e-17,
                ),
                ("n".to_string(), SummaryStats::default(), 0.0),
            ],
        };
        let mut cache = CellCache::default();
        cache.entries.insert("s/n=64".to_string(), entry.clone());
        let dir = std::env::temp_dir().join("rpc-sweep-cache-test");
        let path = dir.join("cells.cache");
        cache.save(&path).unwrap();
        let reloaded = CellCache::load(&path);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(reloaded, cache);
        assert_eq!(reloaded.entries["s/n=64"], entry);
    }

    #[test]
    fn cache_load_is_lenient_about_garbage() {
        let dir = std::env::temp_dir().join("rpc-sweep-cache-lenient");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.cache");
        std::fs::write(
            &path,
            "# header\ncell good\nfp 00000000000000ff\nreps 2\nexhausted 0\n\
             stopped 2 0 0 0 0\nmetric m 1 1 1 1 1 0\nend\n\
             cell broken\nreps not-a-number\nend\nnoise outside blocks\n",
        )
        .unwrap();
        let cache = CellCache::load(&path);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(cache.entries.len(), 1);
        assert_eq!(cache.entries["good"].fingerprint, 0xff);
        assert!(CellCache::load(Path::new("/no/such/file")).entries.is_empty());
    }

    #[test]
    fn cache_save_is_atomic_and_truncated_files_load_leniently() {
        let dir = std::env::temp_dir().join("rpc-sweep-cache-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.cache");
        let mut cache = CellCache::default();
        cache.entries.insert(
            "s/n=64".to_string(),
            CacheEntry {
                fingerprint: 1,
                reps: 2,
                budget_exhausted: false,
                stopped: StoppedByCounts::default(),
                metrics: vec![("m".to_string(), SummaryStats::default(), 0.0)],
            },
        );
        cache.save(&path).unwrap();
        // The write-then-rename leaves no temporary behind.
        assert!(!path.with_extension("tmp").exists(), "orphan temp file after save");
        // A kill mid-write truncates the file at an arbitrary byte. Every
        // prefix must load without panicking, dropping at most the cut block
        // (an interrupted *save* can't produce these thanks to the rename,
        // but a cache copied off a dying machine can).
        let full = std::fs::read_to_string(&path).unwrap();
        for cut in 0..=full.len() {
            let truncated = &full[..cut];
            std::fs::write(&path, truncated).unwrap();
            let loaded = CellCache::load(&path);
            assert!(loaded.entries.len() <= 1, "phantom entries from {truncated:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprints_cover_seed_policy_and_job() {
        let mut spec = SweepSpec::new("s", 1, RepPolicy::fixed(2));
        spec.push_cell(vec![("n".to_string(), "64".to_string())], tiny_job(64)).unwrap();
        let base = cell_fingerprint(&spec, &spec.cells()[0]);
        let mut reseeded = spec.clone();
        reseeded.seed = 2;
        assert_ne!(cell_fingerprint(&reseeded, &reseeded.cells()[0]), base);
        let mut repoliced = spec.clone();
        repoliced.policy = RepPolicy::fixed(3);
        assert_ne!(cell_fingerprint(&repoliced, &repoliced.cells()[0]), base);
        let mut rejobbed = SweepSpec::new("s", 1, RepPolicy::fixed(2));
        rejobbed.push_cell(vec![("n".to_string(), "64".to_string())], tiny_job(128)).unwrap();
        assert_ne!(cell_fingerprint(&rejobbed, &rejobbed.cells()[0]), base);
    }

    #[test]
    fn report_json_is_well_formed_enough_to_eyeball() {
        let spec = SweepSpec::grid("json", 3, RepPolicy::fixed(2))
            .axis("n", [64usize])
            .cells(|p| Some(tiny_job(p.parse("n"))))
            .unwrap();
        let report = SweepRunner::new().with_threads(1).run(&spec);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"spec\":\"json\""));
        assert!(json.contains("\"key\":\"json/n=64\""));
        assert!(json.contains("\"rounds\""));
        assert_eq!(json.matches("\"axes\"").count(), 1);
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn report_accessors_expose_axes_and_metrics() {
        let spec = SweepSpec::grid("acc", 5, RepPolicy::fixed(2))
            .axis("n", [64usize, 128])
            .cells(|p| Some(tiny_job(p.parse("n"))))
            .unwrap();
        let report = SweepRunner::new().with_threads(2).run(&spec);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.total_reps(), 4);
        assert_eq!(report.executed_reps, 4);
        assert_eq!(report.cached_cells, 0);
        let cell = &report.cells[0];
        assert_eq!(cell.axis("n"), Some("64"));
        assert_eq!(cell.axis("missing"), None);
        assert_eq!(cell.stopped.total(), 2);
        assert!(cell.mean("rounds").unwrap() > 0.0);
        assert!(cell.metric("rounds").unwrap().ci_half >= 0.0);
        assert!(report.metric_names().contains(&"packets_per_node"));
    }

    #[test]
    #[should_panic(expected = "not produced by cell")]
    fn missing_adaptive_metric_panics_with_the_cell_key() {
        let spec = SweepSpec::grid(
            "miss",
            1,
            RepPolicy::adaptive(2, 4, CiStopRule::relative("no-such-metric", 0.1)),
        )
        .axis("n", [64usize])
        .cells(|p| Some(tiny_job(p.parse("n"))))
        .unwrap();
        SweepRunner::new().with_threads(1).run(&spec);
    }
}
