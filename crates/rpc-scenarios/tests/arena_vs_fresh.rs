//! Arena-reuse equivalence suite (ISSUE 5).
//!
//! The Monte Carlo hot path runs every repetition through a per-worker
//! [`ScenarioArena`] — reused graph buffers, reused simulation storage,
//! reused delivery pools. These tests pin the contract that makes that
//! optimization safe: for any `(scenario, seed, threads)` the arena path
//! produces **bit-identical** results to the fresh-allocation path — same
//! [`ScenarioOutcome`] (including `stopped_by`), same per-round
//! [`ScenarioTrace`] — no matter what the arena ran before (larger graphs,
//! smaller graphs, other protocols).

use proptest::prelude::*;

use rpc_scenarios::prelude::*;
use rpc_scenarios::registry;

/// One deterministic comparison: fresh vs arena, traced, under the given
/// engine thread count.
fn assert_arena_equals_fresh(
    arena: &mut ScenarioArena,
    scenario: &Scenario,
    seed: u64,
    threads: usize,
) {
    let (fresh, fresh_trace) = run_scenario_traced(scenario, seed, threads);
    let (reused, reused_trace) = run_scenario_traced_in(arena, scenario, seed, threads);
    assert_eq!(fresh, reused, "{} seed {seed} threads {threads}: outcome", scenario.name);
    assert_eq!(fresh_trace, reused_trace, "{} seed {seed} threads {threads}: trace", scenario.name);
}

#[test]
fn every_registry_scenario_agrees_through_one_shared_arena() {
    // One arena across the whole registry: scenario sizes, topologies and
    // protocols all change under it, which is exactly the batch driver's
    // usage pattern.
    let mut arena = ScenarioArena::default();
    for scenario in registry::builtin(96) {
        assert_arena_equals_fresh(&mut arena, &scenario, 7, 1);
    }
}

#[test]
fn dirty_arena_big_small_big_sequence_agrees() {
    // A big run, then a small run, then a big run again — stale state
    // tables, pooled buffers sized for the other universe, and leftover CSR
    // capacity must never leak into a later result.
    let mut arena = ScenarioArena::default();
    let big = Scenario::builder("big", TopologySpec::ErdosRenyiPaper { n: 512 })
        .loss(0.1)
        .build()
        .unwrap();
    let small = Scenario::builder("small", TopologySpec::Complete { n: 24 })
        .stop(StopRule::Rounds(6))
        .build()
        .unwrap();
    for (scenario, seed) in [(&big, 1u64), (&small, 2), (&big, 3), (&small, 4), (&big, 5)] {
        assert_arena_equals_fresh(&mut arena, scenario, seed, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arena == fresh across the protocol × stop-rule matrix, the engine
    /// thread-count axis, and a dirty-arena size sequence: every case runs
    /// big → small → big through ONE arena and compares each leg against a
    /// fresh run.
    #[test]
    fn arena_reuse_is_bit_identical_across_protocols_and_stop_rules(
        protocol_pick in 0u8..3,
        stop_pick in 0u8..3,
        threads in 1usize..4,
        seed in 0u64..10_000,
        small_n in 24usize..64,
        big_n in 128usize..256,
    ) {
        let protocol = match protocol_pick {
            0 => ProtocolSpec::PushPull,
            1 => ProtocolSpec::FastGossiping,
            _ => ProtocolSpec::Memory,
        };
        let stop = match stop_pick {
            0 => StopRule::Complete,
            1 => StopRule::Rounds(9),
            _ => StopRule::Coverage(0.8),
        };
        let build = |name: &str, n: usize| {
            Scenario::builder(name, TopologySpec::ErdosRenyiPaper { n })
                .protocol(protocol)
                .stop(stop)
                .loss(0.05)
                .churn(0.1, 4, 6)
                .build()
                .unwrap()
        };
        let big = build("big", big_n);
        let small = build("small", small_n);
        let mut arena = ScenarioArena::default();
        for (scenario, leg) in [(&big, 0u64), (&small, 1), (&big, 2)] {
            let leg_seed = seed.wrapping_add(leg);
            let (fresh, fresh_trace) = run_scenario_traced(scenario, leg_seed, threads);
            let (reused, reused_trace) =
                run_scenario_traced_in(&mut arena, scenario, leg_seed, threads);
            prop_assert_eq!(&fresh, &reused, "leg {} outcome", leg);
            prop_assert_eq!(&fresh_trace, &reused_trace, "leg {} trace", leg);
            prop_assert_eq!(fresh.stopped_by, reused.stopped_by);
        }
    }
}
