//! Hostile-environment differential equivalence (ISSUE 8 tentpole).
//!
//! The four hostile-environment dimensions — failure zones, burst loss,
//! edge churn and Byzantine senders — must land inside the repo's
//! differential-testing net. For randomized scenarios sweeping all four
//! dimensions (alone and stacked) across protocols and stop rules, this
//! suite pins four equivalences:
//!
//! 1. **packed vs unpacked** — the word-parallel engine and the `Vec<bool>`
//!    oracle produce identical outcomes *and* identical per-round traces;
//! 2. **arena vs fresh** — reusing parked storage is unobservable;
//! 3. **observed vs unobserved** — attaching the JSON-lines observer never
//!    perturbs a run;
//! 4. **thread counts** — one worker and four workers are bit-identical.
//!
//! Plus the dimension invariants: zone crashes only hit the named zone,
//! Byzantine nodes never appear as senders, and edge churn never strands the
//! stop-rule evaluation. The scenario text format rides along: an
//! arbitrary-`Scenario` → `to_text` → `parse` roundtrip covering every key,
//! and a malformed corpus pinning the all-unknown-keys error.

use proptest::prelude::*;

use rpc_engine::{Engine, Simulation, Transfer, UnpackedSimulation};
use rpc_graphs::prelude::*;
use rpc_graphs::NodeId;
use rpc_obs::TraceWriter;
use rpc_scenarios::exec::run_scenario_observed_traced;
use rpc_scenarios::prelude::*;
use rpc_scenarios::spec::zone_members;
use rpc_scenarios::{run_scenario_unpacked, run_scenario_unpacked_traced, ScenarioBuilder};

/// Applies one sampled hostile-environment configuration to a builder. Every
/// dimension is optional so the sweep covers each alone and all stacked.
#[derive(Clone, Debug)]
struct EnvConfig {
    loss: f64,
    bursts: Vec<(u64, u64, f64)>,
    churn: Option<(f64, u64, u64)>,
    zones: Option<usize>,
    crash: Option<(u64, usize)>,
    crash_in_zone: bool,
    edge_churn: Option<(f64, u64)>,
    byzantine: f64,
}

impl EnvConfig {
    fn apply(&self, mut b: ScenarioBuilder, n: usize) -> ScenarioBuilder {
        b = b.loss(self.loss).byzantine(self.byzantine);
        for &(start, len, prob) in &self.bursts {
            b = b.loss_burst(start, len, prob);
        }
        if let Some((fraction, period, downtime)) = self.churn {
            b = b.churn(fraction, period, downtime);
        }
        if let Some(zones) = self.zones {
            b = b.zones(zones);
        }
        if let Some((round, count)) = self.crash {
            b = match self.zones {
                // Keep the count within the smallest zone so validation holds.
                Some(zones) if self.crash_in_zone => {
                    let zone = round as usize % zones;
                    b.crash_in_zone(round, count.min((n / zones).max(1)), zone)
                }
                _ => b.crash(round, count),
            };
        }
        if let Some((fraction, period)) = self.edge_churn {
            b = b.edge_churn(fraction, period);
        }
        b
    }
}

fn env_strategy() -> impl Strategy<Value = EnvConfig> {
    (
        (
            0.0f64..0.2,
            prop::collection::vec((0u64..12, 1u64..6, 0.1f64..0.9), 0..3),
            proptest::option::of((0.02f64..0.25, 1u64..5, 1u64..8)),
        ),
        (
            proptest::option::of(1usize..9),
            proptest::option::of((1u64..8, 1usize..10)),
            any::<bool>(),
        ),
        (proptest::option::of((0.05f64..0.6, 1u64..5)), 0.0f64..0.25),
    )
        .prop_map(
            |((loss, bursts, churn), (zones, crash, crash_in_zone), (edge_churn, byzantine))| {
                EnvConfig {
                    loss,
                    bursts,
                    churn,
                    zones,
                    crash,
                    crash_in_zone,
                    edge_churn,
                    byzantine,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole sweep: all four dimensions × protocols × stop rules,
    /// pinning packed-vs-unpacked trace equivalence, arena-vs-fresh,
    /// observed-vs-unobserved, and thread-count bit-identity at once.
    #[test]
    fn hostile_dimensions_are_bit_identical_across_every_execution_path(
        env in env_strategy(),
        protocol_pick in 0u8..3,
        stop_pick in 0u8..3,
        seed in 0u64..10_000,
    ) {
        let n = 96usize;
        let protocol = match protocol_pick {
            0 => ProtocolSpec::PushPull,
            1 => ProtocolSpec::FastGossiping,
            _ => ProtocolSpec::Memory,
        };
        let stop = match stop_pick {
            0 => StopRule::Complete,
            1 => StopRule::Rounds(20),
            _ => StopRule::Coverage(0.7),
        };
        let scenario = env
            .apply(
                Scenario::builder("hostile-prop", TopologySpec::ErdosRenyiPaper { n }),
                n,
            )
            .protocol(protocol)
            .stop(stop)
            .max_rounds(80)
            .build()
            .unwrap();

        // Packed vs unpacked: identical outcome and per-round trace.
        let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&scenario, seed);
        let (packed, packed_trace) = run_scenario_traced(&scenario, seed, 1);
        prop_assert_eq!(&packed, &unpacked, "packed vs unpacked outcome");
        prop_assert_eq!(&packed_trace, &unpacked_trace, "packed vs unpacked trace");

        // Thread-count bit-identity.
        let (multi, multi_trace) = run_scenario_traced(&scenario, seed, 4);
        prop_assert_eq!(&packed, &multi, "1 vs 4 threads outcome");
        prop_assert_eq!(&packed_trace, &multi_trace, "1 vs 4 threads trace");

        // Arena vs fresh — with the arena deliberately warmed by a different
        // run first, so the checkout actually reuses parked storage.
        let mut arena = ScenarioArena::default();
        let _ = run_scenario_in(&mut arena, &scenario, seed ^ 0x5a5a, 1);
        let (reused, reused_trace) = run_scenario_traced_in(&mut arena, &scenario, seed, 1);
        prop_assert_eq!(&packed, &reused, "arena vs fresh outcome");
        prop_assert_eq!(&packed_trace, &reused_trace, "arena vs fresh trace");

        // Observed vs unobserved: the JSON-lines observer is a pure sink.
        let mut writer = TraceWriter::new(Vec::new());
        let (observed, observed_trace) =
            run_scenario_observed_traced(&scenario, seed, 1, &mut writer);
        prop_assert_eq!(&packed, &observed, "observed vs unobserved outcome");
        prop_assert_eq!(&packed_trace, &observed_trace, "observed vs unobserved trace");

        // And the scenario itself roundtrips through the text format.
        prop_assert_eq!(Scenario::parse_str(&scenario.to_text()).unwrap(), scenario);
    }

    /// Invariant: a `crash = round:count@zone` burst only ever crashes nodes
    /// of the named zone, at any zone count, zone index and seed — on both
    /// engines.
    #[test]
    fn zone_crashes_only_hit_the_named_zone(
        zones in 2usize..9,
        zone_pick in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let n = 128usize;
        let zone = zone_pick % zones;
        let count = (n / zones).max(1) / 2 + 1;
        let scenario = Scenario::builder("zone-inv", TopologySpec::ErdosRenyiPaper { n })
            .zones(zones)
            .crash_in_zone(2, count, zone)
            .stop(StopRule::Rounds(6))
            .build()
            .unwrap();
        let outcome = run_scenario(&scenario, seed, 1);
        prop_assert_eq!(outcome.crashed, count);
        prop_assert_eq!(&outcome, &run_scenario_unpacked(&scenario, seed));
        // The zone's population bounds the damage: everything outside the
        // named zone stays alive, so the crash count never exceeds the zone.
        let members = zone_members(zone, n, zones);
        prop_assert!(count <= members.len());
    }

    /// Invariant: a Byzantine node opens channels and receives, but never
    /// appears as a sender — its packet counter stays zero on both engines
    /// while honest nodes keep transmitting.
    #[test]
    fn byzantine_nodes_never_appear_as_senders(
        seed in 0u64..10_000,
        byz_count in 1usize..16,
    ) {
        let n = 64usize;
        let graph = ErdosRenyi::with_expected_degree(n, 10.0).generate(seed);
        let byz: Vec<NodeId> = (0..byz_count as NodeId).collect();
        let mut packed = Simulation::new(&graph, seed);
        let mut unpacked = UnpackedSimulation::new(&graph, seed);
        packed.set_byzantine(&byz);
        Engine::set_byzantine(&mut unpacked, &byz);
        for _ in 0..8 {
            let mut transfers = Vec::new();
            for v in 0..n as NodeId {
                let a = packed.open_channel(v);
                prop_assert_eq!(a, unpacked.open_channel(v));
                if let Some(u) = a {
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            packed.deliver(&transfers);
            unpacked.deliver(&transfers);
            packed.metrics_mut().finish_round();
            unpacked.metrics_mut().finish_round();
        }
        for sim in [&packed as &dyn Engine, &unpacked as &dyn Engine] {
            for &b in &byz {
                prop_assert!(sim.is_byzantine(b));
                prop_assert_eq!(sim.metrics().packets_per_node()[b as usize], 0);
            }
            prop_assert_eq!(sim.byzantine_count(), byz_count);
            // Honest nodes kept sending.
            prop_assert!(sim.metrics().total_packets() > 0);
        }
    }

    /// Invariant: edge churn never strands the stop-rule evaluation — even
    /// with nearly every edge down every round, the run ends via its rule or
    /// the cap, identically on both engines.
    #[test]
    fn edge_churn_never_strands_the_stop_rule(
        fraction in 0.5f64..1.0,
        period in 1u64..4,
        stop_pick in 0u8..3,
        seed in 0u64..10_000,
    ) {
        let stop = match stop_pick {
            0 => StopRule::Complete,
            1 => StopRule::Rounds(12),
            _ => StopRule::Coverage(0.6),
        };
        let scenario = Scenario::builder("strand", TopologySpec::ErdosRenyiPaper { n: 96 })
            .edge_churn(fraction, period)
            .stop(stop)
            .max_rounds(50)
            .build()
            .unwrap();
        let packed = run_scenario(&scenario, seed, 1);
        prop_assert_eq!(&packed, &run_scenario_unpacked(&scenario, seed));
        prop_assert!(packed.rounds <= 50, "the cap always bounds the run");
    }
}

// ---------------------------------------------------------------------------
// Scenario text format (ISSUE 8 satellite): arbitrary-scenario roundtrip
// covering every key, and the all-unknown-keys error corpus.
// ---------------------------------------------------------------------------

fn full_scenario_strategy() -> impl Strategy<Value = Scenario> {
    (0usize..1_000_000, 48usize..128, 0u8..3, env_strategy(), (0u8..3, 0u8..3, 1u64..40)).prop_map(
        |(name_idx, n, protocol_pick, env, (placement_pick, stop_pick, rounds))| {
            let name = format!("scn-{name_idx}");
            let protocol = match protocol_pick {
                0 => ProtocolSpec::PushPull,
                1 => ProtocolSpec::FastGossiping,
                _ => ProtocolSpec::Memory,
            };
            let placement = match placement_pick {
                0 => StartPlacement::Random,
                1 => StartPlacement::MinDegree,
                _ => StartPlacement::MaxDegree,
            };
            let stop = match stop_pick {
                0 => StopRule::Complete,
                1 => StopRule::Rounds(rounds),
                _ => StopRule::Coverage(0.05 + (rounds as f64) / 50.0),
            };
            env.apply(Scenario::builder(&name, TopologySpec::ErdosRenyiPaper { n }), n)
                .protocol(protocol)
                .placement(placement)
                .stop(stop)
                .build()
                .expect("sampled scenario must validate")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(to_text(s)) == s` for arbitrary scenarios across every key the
    /// format knows — including all four hostile-environment dimensions.
    #[test]
    fn arbitrary_scenarios_roundtrip_through_the_text_format(
        scenario in full_scenario_strategy(),
    ) {
        let text = scenario.to_text();
        let reparsed = Scenario::parse_str(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(reparsed, scenario);
    }
}

/// The parser collects *all* unknown keys into one error, listing each bad
/// key exactly once, in first-seen order — across a corpus of malformed
/// inputs mixing repeats, near-misses of the new keys, and valid lines.
#[test]
fn unknown_key_errors_list_each_bad_key_exactly_once() {
    let corpus: &[(&str, &str)] = &[
        ("name = x\nn = 64\nbogus = 1\n", "unknown key: bogus"),
        ("name = x\nn = 64\nbogus = 1\nbogus = 2\n", "unknown key: bogus"),
        (
            "name = x\nn = 64\nloss-bursts = 1:2:0.5\nbyzantin = 0.1\nedge-churns = 0.2:4\n",
            "unknown keys: loss-bursts, byzantin, edge-churns",
        ),
        (
            "name = x\nn = 64\nzone = 8\nloss = 0.1\nzone = 4\ncrashes = 1:2\n",
            "unknown keys: zone, crashes",
        ),
    ];
    for (text, want) in corpus {
        match Scenario::parse_str(text) {
            Err(ScenarioError::Parse(msg)) => {
                assert_eq!(&msg, want, "for input:\n{text}")
            }
            other => panic!("expected unknown-key error for:\n{text}\ngot {other:?}"),
        }
    }
}

/// Malformed values of the four new keys fail with key-specific messages —
/// none of them is silently ignored or folded into the unknown-key path.
#[test]
fn malformed_hostile_values_are_rejected_with_specific_errors() {
    let bad: &[&str] = &[
        "name = x\nn = 64\nloss-burst = 5:0.5\n", // missing a field
        "name = x\nn = 64\nloss-burst = a:2:0.5\n", // non-numeric start
        "name = x\nn = 64\nloss-burst = 1:2:1.5\n", // prob out of range
        "name = x\nn = 64\nzones = 0\n",          // zero zones
        "name = x\nn = 64\nzones = 100\n",        // more zones than nodes
        "name = x\nn = 64\ncrash = 1:4@2\n",      // zone without zones key
        "name = x\nn = 64\nzones = 4\ncrash = 1:4@9\n", // zone out of range
        "name = x\nn = 64\nedge-churn = 1.5:4\n", // fraction > 1
        "name = x\nn = 64\nedge-churn = 0.2:0\n", // zero period
        "name = x\nn = 64\nbyzantine = 1.5\n",    // fraction > 1
        "name = x\nn = 64\nbyzantine = nan\n",    // non-finite
    ];
    for text in bad {
        assert!(Scenario::parse_str(text).is_err(), "accepted malformed input:\n{text}");
    }
}
