//! Multi-rumor streaming differential equivalence (ISSUE 9 tentpole).
//!
//! Streaming workloads — mid-run rumor injection (Poisson, hotspot and
//! explicit schedules), optional TTL expiry, the `all-rumors` stop rule and
//! per-rumor statistics — must land inside the repo's differential-testing
//! net. For randomized injection specs composed with hostile-environment
//! dimensions, this suite pins four equivalences:
//!
//! 1. **packed vs unpacked** — the word-parallel engine and the `Vec<bool>`
//!    oracle produce identical outcomes *and* identical per-round traces;
//! 2. **arena vs fresh** — reusing parked storage is unobservable;
//! 3. **observed vs unobserved** — attaching the JSON-lines observer never
//!    perturbs a run;
//! 4. **thread counts** — one worker and four workers are bit-identical.
//!
//! Plus the streaming invariants: a TTL-expired rumor never reappears (on
//! both engines, in lockstep), per-rumor completion counts are consistent
//! with aggregate coverage on clean runs, and explicit injections never
//! complete before they arrive. The injection grammar rides along: sampled
//! specs roundtrip through the text format, and the validation corpus pins
//! the list-all-problems error style.

use proptest::prelude::*;

use rpc_engine::{Engine, Simulation, Transfer, UnpackedSimulation};
use rpc_graphs::prelude::*;
use rpc_graphs::NodeId;
use rpc_obs::TraceWriter;
use rpc_scenarios::exec::run_scenario_observed_traced;
use rpc_scenarios::prelude::*;
use rpc_scenarios::{run_scenario_unpacked_traced, ScenarioBuilder};

/// One sampled streaming workload: an injection pattern, an optional TTL,
/// and the hostile dimensions it composes with.
#[derive(Clone, Debug)]
struct StreamConfig {
    rumors: usize,
    pattern_pick: u8,
    rate: f64,
    hotspot: (usize, usize),
    explicit: Vec<(u64, usize)>,
    ttl: Option<u64>,
    loss: f64,
    bursts: Vec<(u64, u64, f64)>,
    churn: Option<(f64, u64, u64)>,
    byzantine: f64,
}

impl StreamConfig {
    fn apply(&self, mut b: ScenarioBuilder, n: usize) -> ScenarioBuilder {
        b = match self.pattern_pick {
            0 => b.inject_poisson(self.rumors, self.rate),
            1 => b.inject_hotspot(self.rumors, (self.hotspot.0 % n) as NodeId, self.hotspot.1),
            _ => b.inject_explicit(
                self.explicit
                    .iter()
                    .take(self.rumors)
                    .map(|&(round, source)| InjectionEntry {
                        round,
                        source: (source % n) as NodeId,
                    })
                    .collect(),
            ),
        };
        if let Some(ttl) = self.ttl {
            b = b.rumor_ttl(ttl);
        }
        b = b.loss(self.loss).byzantine(self.byzantine);
        for &(start, len, prob) in &self.bursts {
            b = b.loss_burst(start, len, prob);
        }
        if let Some((fraction, period, downtime)) = self.churn {
            b = b.churn(fraction, period, downtime);
        }
        b
    }
}

fn stream_strategy() -> impl Strategy<Value = StreamConfig> {
    (
        (
            2usize..10,
            0u8..3,
            0.2f64..2.5,
            (0usize..96, 1usize..5),
            prop::collection::vec((0u64..40, 0usize..96), 10..11),
        ),
        (
            proptest::option::of(1u64..20),
            0.0f64..0.15,
            prop::collection::vec((0u64..12, 1u64..5, 0.1f64..0.8), 0..2),
            proptest::option::of((0.02f64..0.2, 2u64..5, 1u64..6)),
            0.0f64..0.2,
        ),
    )
        .prop_map(
            |(
                (rumors, pattern_pick, rate, hotspot, explicit),
                (ttl, loss, bursts, churn, byzantine),
            )| StreamConfig {
                rumors,
                pattern_pick,
                rate,
                hotspot,
                explicit,
                ttl,
                loss,
                bursts,
                churn,
                byzantine,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole sweep: every injection pattern × TTL × hostile
    /// dimensions × stop rules, pinning packed-vs-unpacked trace
    /// equivalence, arena-vs-fresh, observed-vs-unobserved, and
    /// thread-count bit-identity at once.
    #[test]
    fn streaming_workloads_are_bit_identical_across_every_execution_path(
        config in stream_strategy(),
        stop_pick in 0u8..3,
        seed in 0u64..10_000,
    ) {
        let n = 96usize;
        let stop = match stop_pick {
            0 => StopRule::AllRumors,
            1 => StopRule::Rounds(24),
            _ => StopRule::Coverage(0.7),
        };
        let scenario = config
            .apply(Scenario::builder("stream-prop", TopologySpec::ErdosRenyiPaper { n }), n)
            .stop(stop)
            .max_rounds(80)
            .build()
            .unwrap();

        // Packed vs unpacked: identical outcome and per-round trace.
        let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&scenario, seed);
        let (packed, packed_trace) = run_scenario_traced(&scenario, seed, 1);
        prop_assert_eq!(&packed, &unpacked, "packed vs unpacked outcome");
        prop_assert_eq!(&packed_trace, &unpacked_trace, "packed vs unpacked trace");
        prop_assert!(packed.rumor_stats.is_some(), "streaming runs must report rumor stats");

        // Thread-count bit-identity.
        let (multi, multi_trace) = run_scenario_traced(&scenario, seed, 4);
        prop_assert_eq!(&packed, &multi, "1 vs 4 threads outcome");
        prop_assert_eq!(&packed_trace, &multi_trace, "1 vs 4 threads trace");

        // Arena vs fresh — with the arena deliberately warmed by a different
        // run first, so the checkout actually reuses parked storage.
        let mut arena = ScenarioArena::default();
        let _ = run_scenario_in(&mut arena, &scenario, seed ^ 0x5a5a, 1);
        let (reused, reused_trace) = run_scenario_traced_in(&mut arena, &scenario, seed, 1);
        prop_assert_eq!(&packed, &reused, "arena vs fresh outcome");
        prop_assert_eq!(&packed_trace, &reused_trace, "arena vs fresh trace");

        // Observed vs unobserved: the JSON-lines observer is a pure sink.
        let mut writer = TraceWriter::new(Vec::new());
        let (observed, observed_trace) =
            run_scenario_observed_traced(&scenario, seed, 1, &mut writer);
        prop_assert_eq!(&packed, &observed, "observed vs unobserved outcome");
        prop_assert_eq!(&packed_trace, &observed_trace, "observed vs unobserved trace");

        // And the injection grammar roundtrips through the text format.
        prop_assert_eq!(Scenario::parse_str(&scenario.to_text()).unwrap(), scenario);
    }

    /// Invariant: on a clean network (no loss, churn or expiry) the
    /// `all-rumors` rule only fires once per-rumor completion counts agree
    /// with aggregate coverage — every rumor completes, every participating
    /// node is fully informed, and no completion precedes its injection.
    #[test]
    fn per_rumor_completion_is_consistent_with_aggregate_coverage(
        rumors in 2usize..10,
        sources in prop::collection::vec(0usize..96, 10..11),
        spread in 1u64..6,
        seed in 0u64..10_000,
    ) {
        let n = 96usize;
        let entries: Vec<InjectionEntry> = (0..rumors)
            .map(|m| InjectionEntry {
                round: m as u64 * spread,
                source: (sources[m] % n) as NodeId,
            })
            .collect();
        let scenario = Scenario::builder("consistency", TopologySpec::ErdosRenyiPaper { n })
            .inject_explicit(entries.clone())
            .stop(StopRule::AllRumors)
            .max_rounds(120)
            .build()
            .unwrap();
        let outcome = run_scenario(&scenario, seed, 1);
        prop_assert_eq!(outcome.stopped_by, StoppedBy::AllRumorsDone);
        let stats = outcome.rumor_stats.as_ref().unwrap();
        prop_assert_eq!(stats.injected, rumors);
        prop_assert_eq!(stats.expired, 0);
        prop_assert_eq!(stats.completed_count(), rumors);
        prop_assert_eq!(outcome.coverage, 1.0, "all rumors complete => everyone fully informed");
        prop_assert_eq!(outcome.tracked_coverage, 1.0);
        for (m, entry) in entries.iter().enumerate() {
            let done = stats.completion_rounds[m].unwrap();
            prop_assert!(
                done > entry.round,
                "rumor {} complete at {} but injected at {}", m, done, entry.round
            );
        }
        prop_assert!(stats.inflight_high_water >= 1);
    }

    /// Invariant: once a rumor expires it never reappears — on both engines,
    /// in lockstep: informed counts drop to zero and stay there, expiry is
    /// idempotent, and re-injection of an expired id is refused.
    #[test]
    fn expired_rumors_never_reappear(
        seed in 0u64..10_000,
        expire_after in 1usize..4,
    ) {
        let n = 64usize;
        let universe = 3usize;
        let graph = ErdosRenyi::with_expected_degree(n, 10.0).generate(seed);
        let mut packed = Simulation::new_streaming(&graph, seed, universe);
        let mut unpacked = UnpackedSimulation::new_streaming(&graph, seed, universe);
        prop_assert!(packed.inject_rumor(0, 1));
        prop_assert!(Engine::inject_rumor(&mut unpacked, 0, 1));
        for round in 0..8usize {
            if round == expire_after {
                packed.expire_rumor(1);
                Engine::expire_rumor(&mut unpacked, 1);
                // Idempotent, and a dead id cannot come back.
                packed.expire_rumor(1);
                Engine::expire_rumor(&mut unpacked, 1);
                prop_assert!(!packed.inject_rumor(3, 1));
                prop_assert!(!Engine::inject_rumor(&mut unpacked, 3, 1));
            }
            let mut transfers = Vec::new();
            for v in 0..n as NodeId {
                let a = packed.open_channel(v);
                prop_assert_eq!(a, unpacked.open_channel(v));
                if let Some(u) = a {
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            packed.deliver(&transfers);
            unpacked.deliver(&transfers);
            packed.metrics_mut().finish_round();
            unpacked.metrics_mut().finish_round();
            if round >= expire_after {
                for sim in [&packed as &dyn Engine, &unpacked as &dyn Engine] {
                    prop_assert!(sim.rumor_expired(1));
                    prop_assert_eq!(
                        sim.rumor_informed_count(1), 0,
                        "expired rumor resurfaced in round {}", round
                    );
                    prop_assert!(!sim.rumor_complete(1));
                }
            }
        }
        prop_assert_eq!(packed.rumor_informed_count(1), 0);
    }
}

// ---------------------------------------------------------------------------
// Injection grammar validation (ISSUE 9 satellite): bad specs are rejected
// with every problem listed at once.
// ---------------------------------------------------------------------------

/// Validation rejects injections scheduled past `max_rounds`, explicit
/// entry counts that disagree with `rumors`, sources outside the graph, and
/// injection keys without a rumor space — collecting all problems into one
/// error instead of stopping at the first.
#[test]
fn injection_validation_rejects_bad_specs_listing_every_problem() {
    let er = |n| TopologySpec::ErdosRenyiPaper { n };

    // An explicit entry at the round cap can never fire.
    let late = Scenario::builder("late", er(64))
        .inject_explicit(vec![InjectionEntry { round: 500, source: 0 }])
        .max_rounds(100)
        .build();
    assert!(matches!(late, Err(ScenarioError::Invalid(_))), "{late:?}");

    // A source outside the graph.
    let ghost = Scenario::builder("ghost", er(64))
        .inject_explicit(vec![InjectionEntry { round: 1, source: 64 }])
        .build();
    assert!(ghost.is_err());

    // Streaming requires the push-pull protocol.
    let phased = Scenario::builder("phased", er(64))
        .protocol(ProtocolSpec::FastGossiping)
        .inject_poisson(4, 1.0)
        .build();
    assert!(phased.is_err());

    // `rumor-ttl` without an injection spec is meaningless.
    let ttl_only = Scenario::parse_str("name = x\nn = 64\nrumor-ttl = 5\n");
    assert!(ttl_only.is_err());

    // `stop = all-rumors` without an injection spec can never fire.
    let no_inj = Scenario::builder("no-inj", er(64)).stop(StopRule::AllRumors).build();
    assert!(no_inj.is_err());

    // Several problems at once: every one appears in the single message.
    let err = Scenario::builder("multi", er(64))
        .protocol(ProtocolSpec::Memory)
        .inject_explicit(vec![
            InjectionEntry { round: 900, source: 80 },
            InjectionEntry { round: 1, source: 0 },
        ])
        .rumor_ttl(0)
        .max_rounds(100)
        .build();
    match err {
        Err(ScenarioError::Invalid(msg)) => {
            for needle in ["push-pull", "round 900", "source 80", "ttl"] {
                assert!(msg.contains(needle), "missing `{needle}` in: {msg}");
            }
        }
        other => panic!("expected a combined Invalid error, got {other:?}"),
    }
}

/// Malformed injection values fail the parse with key-specific messages.
#[test]
fn malformed_injection_values_are_rejected() {
    let bad: &[&str] = &[
        "name = x\nn = 64\nrumors = 0\n", // empty rumor space
        "name = x\nn = 64\nrumors = 4\ninject = poisson\n", // missing rate
        "name = x\nn = 64\nrumors = 4\ninject = poisson:-1\n", // negative rate
        "name = x\nn = 64\nrumors = 4\ninject = hotspot:0\n", // missing count
        "name = x\nn = 64\nrumors = 4\ninject = comet:1\n", // unknown pattern
        "name = x\nn = 64\nrumors = 4\ninject = 3\n", // malformed entry
        "name = x\nn = 64\ninject = poisson:1\n", // inject without rumors
        "name = x\nn = 64\nrumors = 2\ninject = poisson:1\ninject = 0:1\n", // mixed forms
        "name = x\nn = 64\nrumors = 4\nrumor-ttl = 0\n", // zero ttl
    ];
    for text in bad {
        assert!(Scenario::parse_str(text).is_err(), "accepted malformed input:\n{text}");
    }
}
