//! Observer-attachment determinism: the zero-cost contract's observable half.
//!
//! Attaching any observer — including the full JSON-lines [`TraceWriter`] —
//! to a scenario run must leave the outcome and the complete per-round trace
//! bit-identical to the unobserved run, for every registry scenario and any
//! thread count. Observers are write-only sinks; nothing they do (formatting,
//! I/O, buffering) may flow back into the seeded computation.

use proptest::prelude::*;

use rpc_obs::{parse_object, NoopObserver, TraceWriter};
use rpc_scenarios::exec::{run_scenario_observed_traced, run_scenario_traced};
use rpc_scenarios::registry;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every registry scenario: the outcome and full trace with the
    /// JSON-lines observer attached equal the no-op observer's, which equal
    /// the plain (unobserved) run's — across thread counts.
    #[test]
    fn observed_runs_are_bit_identical_to_unobserved(
        scenario_pick in 0usize..registry::BUILTIN_NAMES.len(),
        n in 48usize..96,
        seed in 0u64..10_000,
        threads in 1usize..5,
    ) {
        let scenario = registry::builtin(n)
            .into_iter()
            .nth(scenario_pick)
            .expect("registry index in range");

        let (plain, plain_trace) = run_scenario_traced(&scenario, seed, threads);

        let mut noop = NoopObserver;
        let (noop_obs, noop_trace) =
            run_scenario_observed_traced(&scenario, seed, threads, &mut noop);
        prop_assert_eq!(&plain, &noop_obs, "no-op observer perturbed the run");
        prop_assert_eq!(&plain_trace, &noop_trace);

        let mut writer = TraceWriter::new(Vec::new());
        let (written, written_trace) =
            run_scenario_observed_traced(&scenario, seed, threads, &mut writer);
        prop_assert_eq!(&plain, &written, "JSON-lines observer perturbed the run");
        prop_assert_eq!(&plain_trace, &written_trace);

        // The emitted stream is well-formed flat JSON lines, and a run
        // always emits at least the per-round and run-finished events.
        let bytes = writer.finish().expect("in-memory trace cannot fail");
        let text = String::from_utf8(bytes).expect("traces are UTF-8");
        let mut kinds = Vec::new();
        for line in text.lines() {
            let fields = parse_object(line)
                .unwrap_or_else(|| panic!("unparseable trace line: {line}"));
            let kind = fields
                .iter()
                .find(|(k, _)| k == "ev")
                .and_then(|(_, v)| v.as_str())
                .expect("every event carries its kind");
            kinds.push(kind.to_string());
        }
        prop_assert!(kinds.iter().any(|k| k == "round"));
        prop_assert!(kinds.iter().any(|k| k == "run-finished"));
        prop_assert!(kinds.iter().any(|k| k == "pool"));
    }
}
