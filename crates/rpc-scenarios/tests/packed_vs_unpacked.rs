//! Packed-vs-unpacked equivalence (ISSUE 3 tentpole guarantee, extended to
//! the step-driven executor of ISSUE 4).
//!
//! The packed, word-parallel engine (`rpc_engine::Simulation`) and the
//! unpacked reference oracle (`rpc_engine::reference::UnpackedSimulation`)
//! must be observationally identical: for any `(scenario, seed)` both produce
//! the same [`ScenarioOutcome`] *and* the same per-round [`ScenarioTrace`].
//! Every protocol — push-pull and the phase-based fast-gossiping and
//! memory-model algorithms — is stepped one round at a time, so the traces
//! now carry a row per round for all of them. This file asserts equivalence
//!
//! 1. for every scenario in the 17-entry registry (all three protocols under
//!    complete/rounds/coverage stop rules, churn/loss/crash environments,
//!    plus the hostile dimensions — failure zones, loss bursts, edge churn
//!    and Byzantine senders), at several seeds and for one and several
//!    delivery worker threads;
//! 2. property-based, for randomized scenarios drawn across topology,
//!    protocol, environment and stop-rule space — the stop-rule dimension
//!    covers the phase-based protocols too.

use proptest::prelude::*;

use rpc_scenarios::prelude::*;
use rpc_scenarios::registry;
use rpc_scenarios::{run_scenario_unpacked, run_scenario_unpacked_traced};

#[test]
fn every_registry_scenario_traces_identically_on_both_engines() {
    for scenario in registry::builtin(64) {
        for seed in [1u64, 7, 42] {
            let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&scenario, seed);
            for threads in [1usize, 3] {
                let (packed, packed_trace) = run_scenario_traced(&scenario, seed, threads);
                assert_eq!(
                    packed, unpacked,
                    "outcome diverged for {} (seed {seed}, {threads} threads)",
                    scenario.name
                );
                assert_eq!(
                    packed_trace, unpacked_trace,
                    "trace diverged for {} (seed {seed}, {threads} threads)",
                    scenario.name
                );
            }
            // Every protocol is step-driven: one row per round plus the
            // final stop-rule evaluation.
            assert_eq!(
                unpacked_trace.rounds.len() as u64,
                unpacked.rounds + 1,
                "{} trace rows do not match its rounds",
                scenario.name
            );
        }
    }
}

/// A degree that keeps an `n`-node random-regular graph well-formed.
fn regular_degree(n: usize, wanted: usize) -> usize {
    let mut d = wanted.clamp(2, n - 1);
    if n % 2 == 1 && d % 2 == 1 {
        d += 1;
    }
    d.min(n - 1)
}

fn topology_strategy() -> impl Strategy<Value = TopologySpec> {
    (24usize..100, 0u8..4, 4usize..12).prop_map(|(n, kind, degree)| match kind {
        0 => TopologySpec::ErdosRenyiPaper { n },
        1 => TopologySpec::ErdosRenyiDegree { n, degree: degree as f64 },
        2 => TopologySpec::RandomRegular { n, degree: regular_degree(n, degree) },
        _ => TopologySpec::Complete { n },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random push-pull scenarios across the whole environment and stop-rule
    /// space: packed and unpacked traces must be identical.
    #[test]
    fn random_push_pull_scenarios_trace_identically(
        topology in topology_strategy(),
        seed in 0u64..10_000,
        loss in 0.0f64..0.4,
        churn in proptest::option::of((0.02f64..0.3, 2u64..5, 2u64..8)),
        crash in proptest::option::of((0u64..6, 1usize..16)),
        placement in 0u8..3,
        stop in 0u8..3,
        coverage in 0.3f64..1.0,
        budget in 1u64..40,
        threads in 1usize..4,
    ) {
        let mut builder = Scenario::builder("prop-pp", topology)
            .loss(loss)
            .placement(match placement {
                0 => StartPlacement::Random,
                1 => StartPlacement::MinDegree,
                _ => StartPlacement::MaxDegree,
            })
            .stop(match stop {
                0 => StopRule::Complete,
                1 => StopRule::Rounds(budget),
                _ => StopRule::Coverage(coverage),
            });
        if let Some((fraction, period, downtime)) = churn {
            builder = builder.churn(fraction, period, downtime);
        }
        if let Some((round, count)) = crash {
            builder = builder.crash(round, count);
        }
        let scenario = builder.build().unwrap();
        let (packed, packed_trace) = run_scenario_traced(&scenario, seed, threads);
        let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&scenario, seed);
        prop_assert_eq!(&packed, &unpacked);
        prop_assert_eq!(packed_trace, unpacked_trace);
        // The untraced entry points agree with the traced ones.
        prop_assert_eq!(&run_scenario(&scenario, seed, threads), &packed);
        prop_assert_eq!(&run_scenario_unpacked(&scenario, seed), &unpacked);
    }

    /// Random phase-based (fast-gossiping / memory) scenarios under hostile
    /// environments and **all three stop rules**: outcomes, per-round traces
    /// and phase traces must be identical on both engines.
    #[test]
    fn random_phase_scenarios_trace_identically(
        n in 24usize..80,
        protocol_pick in 0u8..2,
        seed in 0u64..10_000,
        loss in 0.0f64..0.2,
        crash in proptest::option::of((0u64..4, 1usize..10)),
        churn in proptest::option::of((0.02f64..0.2, 2u64..5, 2u64..6)),
        stop in 0u8..3,
        coverage in 0.3f64..1.0,
        budget in 1u64..60,
    ) {
        let protocol = if protocol_pick == 0 {
            ProtocolSpec::FastGossiping
        } else {
            ProtocolSpec::Memory
        };
        let mut builder = Scenario::builder("prop-phase", TopologySpec::ErdosRenyiPaper { n })
            .protocol(protocol)
            .loss(loss)
            .stop(match stop {
                0 => StopRule::Complete,
                1 => StopRule::Rounds(budget),
                _ => StopRule::Coverage(coverage),
            });
        if let Some((round, count)) = crash {
            builder = builder.crash(round, count);
        }
        if let Some((fraction, period, downtime)) = churn {
            builder = builder.churn(fraction, period, downtime);
        }
        let scenario = builder.build().unwrap();
        let (packed, packed_trace) = run_scenario_traced(&scenario, seed, 2);
        let (unpacked, unpacked_trace) = run_scenario_unpacked_traced(&scenario, seed);
        prop_assert_eq!(&packed, &unpacked);
        prop_assert_eq!(&packed_trace, &unpacked_trace);
        prop_assert!(!packed_trace.phases.is_empty(), "phase protocols must mark phases");
        // The step-driven executor records one row per round plus the final
        // stop-rule evaluation, for phase protocols too.
        prop_assert_eq!(packed_trace.rounds.len() as u64, packed.rounds + 1);
        // A round budget within the schedule is spent exactly.
        if let StopRule::Rounds(r) = scenario.stop {
            prop_assert!(packed.rounds <= r);
            if packed.stopped_by == StoppedBy::RoundBudget {
                prop_assert_eq!(packed.rounds, r);
            }
        }
    }
}
