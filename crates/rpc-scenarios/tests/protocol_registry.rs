//! End-to-end checks of the broadcast and leader-election registry
//! scenarios: the protocols added on top of the [`rpc_gossip::ProtocolDriver`]
//! surface must run through the full scenario executor — registry lookup,
//! environment scheduling, drive loop, outcome assembly — not just through
//! their own unit tests.

use rpc_scenarios::registry::find;
use rpc_scenarios::{run_scenario, run_scenario_unpacked, StoppedBy};

#[test]
fn broadcast_scenarios_complete_and_push_pull_beats_push() {
    for n in [256usize, 1024] {
        for seed in [1u64, 7, 42] {
            let push = run_scenario(&find("broadcast-push", n).unwrap(), seed, 1);
            let pushpull = run_scenario(&find("broadcast-push-pull", n).unwrap(), seed, 1);
            for (label, o) in [("push", &push), ("push-pull", &pushpull)] {
                assert!(o.completed, "broadcast-{label} n={n} seed={seed}: {o:?}");
                assert_eq!(o.stopped_by, StoppedBy::AllRumorsDone);
                let stats = o.rumor_stats.as_ref().expect("broadcast runs are streaming");
                assert_eq!(stats.completed_count(), 1);
                assert!(o.election.is_none());
            }
            // Karp et al.: the pull direction closes the tail exponentially
            // faster, so push-pull needs strictly fewer rounds at these sizes.
            assert!(
                pushpull.rounds < push.rounds,
                "n={n} seed={seed}: push-pull {} !< push {}",
                pushpull.rounds,
                push.rounds
            );
        }
    }
}

#[test]
fn election_scenario_succeeds_under_the_paper_failure_regime() {
    for n in [256usize, 1024] {
        for seed in [1u64, 7, 42] {
            let scenario = find("election-failures", n).unwrap();
            let outcome = run_scenario(&scenario, seed, 1);
            assert!(outcome.completed, "election n={n} seed={seed}: {outcome:?}");
            assert_eq!(outcome.stopped_by, StoppedBy::Complete);
            let election = outcome.election.expect("election scenario reports a summary");
            assert!(election.succeeded(), "n={n} seed={seed}: {election:?}");
            assert_eq!(election.self_declared, 1);
            assert!(election.alive_nodes < n, "the crash burst must land");
            assert_eq!(election.aware_nodes, election.alive_nodes);
            assert_eq!(outcome.crashed, n - election.alive_nodes);
        }
    }
}

#[test]
fn new_protocols_agree_between_packed_and_unpacked_engines() {
    for name in ["broadcast-push", "broadcast-push-pull", "election-failures"] {
        let scenario = find(name, 256).unwrap();
        let packed = run_scenario(&scenario, 5, 1);
        let unpacked = run_scenario_unpacked(&scenario, 5);
        assert_eq!(packed, unpacked, "{name} diverges between engines");
    }
}
