//! Property tests for the scenario engine (ISSUE 2 satellite):
//!
//! 1. churn/loss scenarios are deterministic in `(seed, threads)` — one
//!    worker and four workers produce the same outcome, both for a single
//!    replication and for an aggregated batch;
//! 2. a dead (churned-out) node never sends or receives a packet.

use proptest::prelude::*;

use rpc_engine::{Simulation, Transfer};
use rpc_graphs::prelude::*;
use rpc_scenarios::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn churn_loss_outcomes_are_deterministic_in_seed_and_threads(
        seed in 0u64..10_000,
        loss in 0.0f64..0.5,
        churn_fraction in 0.0f64..0.3,
    ) {
        let scenario = Scenario::builder("prop", TopologySpec::ErdosRenyiPaper { n: 192 })
            .loss(loss)
            .churn(churn_fraction, 3, 5)
            .build()
            .unwrap();
        let single = run_scenario(&scenario, seed, 1);
        let multi = run_scenario(&scenario, seed, 4);
        prop_assert_eq!(&single, &multi);
        // And rerunning with the same seed reproduces the outcome exactly.
        prop_assert_eq!(&single, &run_scenario(&scenario, seed, 1));
    }

    #[test]
    fn batch_reports_are_identical_for_one_and_four_threads(seed in 0u64..10_000) {
        let scenarios = vec![
            Scenario::builder("churny", TopologySpec::ErdosRenyiPaper { n: 128 })
                .churn(0.15, 2, 4)
                .build()
                .unwrap(),
            Scenario::builder("lossy", TopologySpec::ErdosRenyiPaper { n: 128 })
                .loss(0.3)
                .build()
                .unwrap(),
        ];
        let one = BatchDriver::new(3, seed).with_threads(1).run(&scenarios);
        let four = BatchDriver::new(3, seed).with_threads(4).run(&scenarios);
        prop_assert_eq!(one, four);
    }

    #[test]
    fn dead_nodes_never_send_or_receive(
        seed in 0u64..10_000,
        victim in 0u32..64,
        warmup in 1usize..4,
    ) {
        let graph = ErdosRenyi::with_expected_degree(64, 12.0).generate(seed);
        let mut sim = Simulation::new(&graph, seed).with_loss_probability(0.1);
        let drive_round = |sim: &mut Simulation<'_>| {
            let mut transfers = Vec::new();
            for v in 0..64u32 {
                if let Some(u) = sim.open_channel(v) {
                    transfers.push(Transfer::new(v, u));
                    transfers.push(Transfer::new(u, v));
                }
            }
            sim.deliver(&transfers);
            sim.metrics_mut().finish_round();
        };
        for _ in 0..warmup {
            drive_round(&mut sim);
        }
        sim.kill_nodes(&[victim]);
        let packets_before = sim.metrics().packets_per_node()[victim as usize];
        let known_before = sim.num_known(victim);
        let state_before = sim.state(victim).clone();
        for _ in 0..8 {
            drive_round(&mut sim);
        }
        // While dead: no packet sent, nothing received or stored.
        prop_assert_eq!(sim.metrics().packets_per_node()[victim as usize], packets_before);
        prop_assert_eq!(sim.num_known(victim), known_before);
        prop_assert_eq!(sim.state(victim), &state_before);
    }
}
