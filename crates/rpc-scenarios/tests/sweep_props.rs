//! Property tests for the adaptive sweep engine's determinism contract:
//!
//! 1. adaptive-stop sweeps are bit-identical across thread counts — the
//!    per-cell cut `k`, the aggregates, even the executed-rep count;
//! 2. resuming a sweep from the cell cache reproduces a fresh run's report
//!    exactly (modulo the `from_cache` provenance flag), both for full and
//!    partial (grid-grown) resumes;
//! 3. adaptive stopping actually pays: on a low-variance cell it executes
//!    fewer repetitions than the fixed-rep budget while matching its numbers.

use proptest::prelude::*;

use rpc_scenarios::prelude::*;
use rpc_scenarios::{CellResult, SweepReport};

/// A small random mixed-kind sweep: scenario cells across two sizes plus a
/// memory-model failure cell, so every job kind rides the pool together.
fn mixed_spec(name: &str, seed: u64, loss: f64, failures: usize, policy: RepPolicy) -> SweepSpec {
    let mut spec = SweepSpec::new(name, seed, policy);
    for n in [96usize, 128] {
        let scenario = Scenario::builder("mixed", TopologySpec::ErdosRenyiPaper { n })
            .loss(loss)
            .build()
            .unwrap();
        spec.push_cell(
            vec![("kind".into(), "scenario".into()), ("n".into(), n.to_string())],
            CellJob::scenario(scenario),
        )
        .unwrap();
    }
    spec.push_cell(
        vec![("kind".into(), "memory".into()), ("n".into(), "96".into())],
        CellJob::MemoryFailure { n: 96, failures, trees: 2 },
    )
    .unwrap();
    spec
}

/// Strips the provenance flag so cached and fresh results compare equal on
/// their numbers.
fn without_provenance(report: &SweepReport) -> Vec<CellResult> {
    report
        .cells
        .iter()
        .cloned()
        .map(|mut c| {
            c.from_cache = false;
            c
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn adaptive_sweeps_are_bit_identical_across_thread_counts(
        seed in 0u64..10_000,
        loss in 0.0f64..0.3,
        failures in 0usize..24,
    ) {
        let policy = RepPolicy::adaptive(2, 8, CiStopRule::relative("rounds", 0.25));
        let spec = mixed_spec("threads", seed, loss, failures, policy);
        let one = SweepRunner::new().with_threads(1).run(&spec);
        let four = SweepRunner::new().with_threads(4).run(&spec);
        let many = SweepRunner::new().with_threads(64).run(&spec);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&one, &many);
    }

    #[test]
    fn cache_resume_reproduces_a_fresh_run_exactly(
        seed in 0u64..10_000,
        loss in 0.0f64..0.3,
    ) {
        let policy = RepPolicy::adaptive(2, 6, CiStopRule::relative("packets_per_node", 0.2));
        let spec = mixed_spec("resume", seed, loss, 8, policy);
        let fresh = SweepRunner::new().with_threads(2).run(&spec);

        let dir = std::env::temp_dir().join(format!("rpc-sweep-resume-{seed}-{}", std::process::id()));
        let cache = dir.join("cells.cache");
        let first = SweepRunner::new().with_threads(2).with_cache(&cache).run(&spec);
        let resumed = SweepRunner::new().with_threads(3).with_cache(&cache).run(&spec);
        std::fs::remove_dir_all(&dir).ok();

        // Uncached runs are oblivious to the cache machinery…
        prop_assert_eq!(&first.cells, &fresh.cells);
        prop_assert_eq!(first.executed_reps, fresh.executed_reps);
        // …and the resumed run serves every cell from cache, bit-identically.
        prop_assert_eq!(resumed.cached_cells, spec.cells().len());
        prop_assert_eq!(resumed.executed_reps, 0);
        prop_assert!(resumed.cells.iter().all(|c| c.from_cache));
        prop_assert_eq!(without_provenance(&resumed), without_provenance(&fresh));
    }

    #[test]
    fn growing_a_grid_only_computes_the_new_cells(seed in 0u64..10_000) {
        let policy = RepPolicy::fixed(2);
        let dir = std::env::temp_dir().join(format!("rpc-sweep-grow-{seed}-{}", std::process::id()));
        let cache = dir.join("cells.cache");
        let small = mixed_spec("grow", seed, 0.1, 4, policy.clone());
        SweepRunner::new().with_threads(2).with_cache(&cache).run(&small);

        let mut grown = small.clone();
        grown.push_cell(
            vec![("kind".into(), "memory".into()), ("n".into(), "128".into())],
            CellJob::MemoryFailure { n: 128, failures: 4, trees: 2 },
        ).unwrap();
        let resumed = SweepRunner::new().with_threads(2).with_cache(&cache).run(&grown);
        let fresh = SweepRunner::new().with_threads(2).run(&grown);
        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(resumed.cached_cells, small.cells().len());
        prop_assert_eq!(resumed.executed_reps, 2, "exactly the new cell's reps");
        prop_assert_eq!(without_provenance(&resumed), without_provenance(&fresh));
    }
}

#[test]
fn adaptive_stopping_executes_fewer_reps_than_the_fixed_budget() {
    // A clean complete-stop scenario has near-deterministic round counts, so
    // a loose relative CI on `rounds` converges at the 2-rep minimum while
    // the fixed policy always pays the full budget.
    let build = |policy: RepPolicy| {
        SweepSpec::grid("budget", 9, policy)
            .axis("n", [96usize, 128])
            .cells(|point| {
                let n: usize = point.parse("n");
                Some(CellJob::scenario(
                    Scenario::builder("clean", TopologySpec::ErdosRenyiPaper { n })
                        .build()
                        .unwrap(),
                ))
            })
            .unwrap()
    };
    let fixed = SweepRunner::new().with_threads(2).run(&build(RepPolicy::fixed(8)));
    let adaptive = SweepRunner::new().with_threads(2).run(&build(RepPolicy::adaptive(
        2,
        8,
        CiStopRule::relative("rounds", 0.5),
    )));
    assert_eq!(fixed.executed_reps, 16);
    assert!(
        adaptive.executed_reps < fixed.executed_reps,
        "adaptive spent {} reps, fixed {}",
        adaptive.executed_reps,
        fixed.executed_reps
    );
    // The cells it did decide are built from the same seeded repetitions: the
    // first k samples of the fixed run.
    for (a, f) in adaptive.cells.iter().zip(&fixed.cells) {
        assert_eq!(a.key, f.key);
        assert!(a.reps <= f.reps);
        let (am, fm) = (a.metric("rounds").unwrap(), f.metric("rounds").unwrap());
        assert!(am.stats.min >= fm.stats.min && am.stats.max <= fm.stats.max);
    }
}

#[test]
fn fixed_sweep_cells_match_standalone_cell_runs() {
    // The runner adds nothing to the numbers: a cell's aggregate equals what
    // hand-running `run_cell` with the documented seed derivation produces.
    use rpc_engine::{derive_seed, hash_key};
    use rpc_scenarios::{run_cell, ScenarioArena};

    let spec = mixed_spec("oracle", 4, 0.15, 6, RepPolicy::fixed(3));
    let report = SweepRunner::new().with_threads(2).run(&spec);
    let mut arena = ScenarioArena::default();
    for (cell, result) in spec.cells().iter().zip(&report.cells) {
        assert_eq!(result.reps, 3);
        let mut stopped = StoppedByCounts::default();
        let mut rounds = Vec::new();
        for rep in 0..3u64 {
            let seed = derive_seed(spec.seed, hash_key(cell.key.as_bytes()), rep);
            let outcome = run_cell(&mut arena, &cell.job, seed);
            stopped.record(outcome.stopped_by);
            rounds.push(outcome.metric("rounds").unwrap());
        }
        assert_eq!(result.stopped, stopped, "{}", cell.key);
        assert_eq!(result.metric("rounds").unwrap().stats, summarize(&rounds), "{}", cell.key);
    }
}
