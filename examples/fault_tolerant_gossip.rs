//! Fault tolerance of the memory-model gossiping (Figure 2 scenario).
//!
//! Builds three independent distribution trees, then fails an increasing
//! number of random nodes between the tree construction and the gathering
//! phase, and reports how many *additional* healthy messages are lost — the
//! quantity plotted in Figures 2 and 3 of the paper.
//!
//! ```bash
//! cargo run --release --example fault_tolerant_gossip
//! ```

use gossip_density::gossip::MemoryGossipConfig;
use gossip_density::prelude::*;

fn main() {
    let n = 1 << 13;
    let graph = ErdosRenyi::paper_density(n).generate(11);
    let config = MemoryGossipConfig::paper_defaults(n).with_trees(3);
    let algorithm = MemoryGossip::new(config).with_leader(0);

    println!("n = {n}, three independent distribution trees, failures injected before gathering\n");
    println!(
        "{:>10} {:>16} {:>12} {:>18}",
        "failed", "lost (healthy)", "loss ratio", "packets per node"
    );
    for failures in [0usize, 16, 64, 256, 1024] {
        let outcome = algorithm.run_with_failures(&graph, 5, failures);
        println!(
            "{:>10} {:>16} {:>12} {:>18.2}",
            failures,
            outcome.lost_messages(),
            outcome
                .additional_loss_ratio()
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".to_string()),
            outcome.messages_per_node(Accounting::PerPacket)
        );
    }

    println!(
        "\nThe loss ratio stays small (the paper reports values below ~2.5 even for very\n\
         large failure counts): each failed node takes down at most a few healthy\n\
         subtrees because the three trees are independent."
    );
}
