//! Peer-to-peer aggregation with a leader — the memory-model pipeline.
//!
//! A peer-to-peer network wants to compute an aggregate (here: the minimum and
//! the sum of per-peer measurements) with as little communication as possible.
//! The paper's memory model (Section 4) gives the recipe:
//!
//! 1. elect a leader with Algorithm 3 (`O(n log log n)` transmissions),
//! 2. gather all inputs at the leader along a communication tree and broadcast
//!    the result back with Algorithm 2 (`O(n)` transmissions).
//!
//! ```bash
//! cargo run --release --example p2p_aggregation
//! ```

use gossip_density::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let peers = 1 << 12;
    let overlay = ErdosRenyi::paper_density(peers).generate(7);

    // Per-peer measurements (e.g. free disk space in GB).
    let mut rng = SmallRng::seed_from_u64(99);
    let measurements: Vec<u32> = (0..peers).map(|_| rng.gen_range(10..1000)).collect();

    // Step 1: leader election (Algorithm 3).
    let election = LeaderElection::paper(peers).run(&overlay, 3);
    let leader = election.leader.expect("election failed");
    println!(
        "leader election: {} candidates, leader = peer {leader}, {:.2} packets/peer, {} rounds",
        election.candidates,
        election.messages_per_node(),
        election.rounds
    );
    assert!(election.succeeded());

    // Step 2: gossiping with the elected leader (Algorithm 2). After the run
    // every peer knows every original message, i.e. every measurement.
    let gossip = MemoryGossip::paper(peers).with_leader(leader).run(&overlay, 4);
    println!(
        "memory-model gossiping: {} rounds, {:.2} packets/peer, complete = {}",
        gossip.rounds(),
        gossip.messages_per_node(Accounting::PerPacket),
        gossip.completed()
    );

    // Every peer can now evaluate the aggregate locally.
    let min = measurements.iter().copied().min().unwrap();
    let sum: u64 = measurements.iter().map(|&x| x as u64).sum();
    println!("aggregates available at every peer: min = {min}, sum = {sum}");

    let total_packets = election.total_packets + gossip.total_packets();
    println!(
        "total packets for election + aggregation: {:.2} per peer \
         (vs ~{:.0} for log n rounds of naive flooding)",
        total_packets as f64 / peers as f64,
        (peers as f64).log2() * 2.0
    );
}
