//! Quickstart: run all three gossiping algorithms of the paper on one random
//! graph and compare their communication overhead.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gossip_density::prelude::*;

fn main() {
    // The paper's network model: an Erdős–Rényi graph with p = log² n / n.
    let n = 1 << 12;
    let graph = ErdosRenyi::paper_density(n).generate(42);
    println!(
        "G(n = {n}, p = log² n / n): average degree {:.1}, {} edges\n",
        graph.average_degree(),
        graph.num_edges()
    );

    let algorithms: Vec<Box<dyn GossipAlgorithm>> = vec![
        Box::new(PushPullGossip::default()),
        Box::new(FastGossiping::paper(n)),
        Box::new(MemoryGossip::paper(n)),
    ];

    println!(
        "{:<16} {:>8} {:>12} {:>13} {:>10}",
        "algorithm", "rounds", "msgs/node", "packets/node", "complete"
    );
    for algorithm in &algorithms {
        let outcome = algorithm.run(&graph, 7);
        println!(
            "{:<16} {:>8} {:>12.2} {:>13.2} {:>10}",
            algorithm.name(),
            outcome.rounds(),
            outcome.messages_per_node(Accounting::PerChannelExchange),
            outcome.messages_per_node(Accounting::PerPacket),
            outcome.completed()
        );
    }

    println!(
        "\nExpected shape (Figure 1): memory ≪ fast-gossiping < push-pull, with the\n\
         gap between fast-gossiping and push-pull growing with n."
    );
}
