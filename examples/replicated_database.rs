//! Replicated database synchronisation — the motivating application of the
//! random phone call model (Demers et al. 1987, Karp et al. 2000).
//!
//! Every replica holds a local update (its original message); all updates must
//! reach all replicas to restore consistency. This example contrasts the
//! anti-entropy baseline (push-pull every round) with the paper's
//! fast-gossiping protocol, which trades a moderately longer synchronisation
//! window for far fewer packets per replica — exactly the trade-off a
//! bandwidth-constrained replication layer cares about.
//!
//! ```bash
//! cargo run --release --example replicated_database
//! ```

use gossip_density::prelude::*;

fn main() {
    let replicas = 1 << 13;
    println!("cluster of {replicas} replicas, one pending update per replica\n");

    // A replication overlay in which every replica knows ~log² n peers.
    let overlay = ErdosRenyi::paper_density(replicas).generate(2024);

    let anti_entropy = PushPullGossip::default().run(&overlay, 1);
    let fast = FastGossiping::paper(replicas).run(&overlay, 1);

    let report = |label: &str, outcome: &GossipOutcome| {
        println!("{label}");
        println!("  synchronisation rounds : {}", outcome.rounds());
        println!(
            "  packets per replica    : {:.2}",
            outcome.messages_per_node(Accounting::PerPacket)
        );
        println!(
            "  channels opened/replica: {:.2}",
            outcome.channels_opened() as f64 / replicas as f64
        );
        println!("  all replicas consistent: {}\n", outcome.completed());
    };

    report("anti-entropy (push-pull every round)", &anti_entropy);
    report("fast-gossiping (Algorithm 1)", &fast);

    let saving = 100.0
        * (1.0
            - fast.messages_per_node(Accounting::PerPacket)
                / anti_entropy.messages_per_node(Accounting::PerPacket));
    println!(
        "fast-gossiping delivers the same consistency with {saving:.0}% fewer packets per \
         replica, at the cost of {:.1}x more rounds.",
        fast.rounds() as f64 / anti_entropy.rounds().max(1) as f64
    );
}
