//! # gossip-density
//!
//! Umbrella crate for the reproduction of *"On the Influence of Graph Density on
//! Randomized Gossiping"* (Elsässer & Kaaser, 2015). It re-exports the three
//! library layers so downstream users only need a single dependency:
//!
//! * [`graphs`] — random graph substrate (Erdős–Rényi, configuration model,
//!   complete graphs) in a compact CSR representation,
//! * [`engine`] — the random phone call model simulation engine (channels,
//!   message sets, communication accounting, failures, memory lists),
//! * [`gossip`] — the gossiping/broadcasting algorithms studied in the paper
//!   (Push-Pull, fast-gossiping, memory-model gossiping, leader election),
//! * [`scenarios`] — the declarative scenario engine (topology/protocol/
//!   environment specs, dynamic churn and message loss, a multi-threaded
//!   Monte Carlo batch driver, and a registry of named workloads),
//! * [`runtime`] — the fault-tolerant node runtime (per-node actors over a
//!   pluggable transport, a seeded nemesis fault injector, and a retrying
//!   round synchronizer),
//! * [`experiments`] — the harness that regenerates every figure and table of
//!   the paper's evaluation section,
//! * [`obs`] — the zero-cost observability layer (the `Observer` trait, the
//!   event taxonomy, trace/aggregation/progress sinks) shared by all of the
//!   above.
//!
//! ## Quickstart
//!
//! ```
//! use gossip_density::prelude::*;
//!
//! // G(n, p) with the paper's density p = log^2 n / n.
//! let graph = ErdosRenyi::paper_density(1 << 10).generate(7);
//! let outcome = PushPullGossip::default().run(&graph, 7);
//! assert!(outcome.completed());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rpc_engine as engine;
pub use rpc_experiments as experiments;
pub use rpc_gossip as gossip;
pub use rpc_graphs as graphs;
pub use rpc_obs as obs;
pub use rpc_runtime as runtime;
pub use rpc_scenarios as scenarios;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use rpc_engine::prelude::*;
    pub use rpc_gossip::prelude::*;
    pub use rpc_graphs::prelude::*;
    pub use rpc_scenarios::prelude::*;
}
