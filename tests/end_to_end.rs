//! Cross-crate integration tests: graph substrate → simulation engine →
//! gossiping algorithms → experiment harness, exercised through the public
//! API of the umbrella crate exactly as a downstream user would.

use gossip_density::experiments;
use gossip_density::gossip::{theory, MemoryGossipConfig};
use gossip_density::prelude::*;

const N: usize = 1 << 10;

fn paper_graph(seed: u64) -> Graph {
    ErdosRenyi::paper_density(N).generate(seed)
}

#[test]
fn all_algorithms_complete_on_all_paper_topologies() {
    let topologies: Vec<(&str, Graph)> = vec![
        ("erdos-renyi", paper_graph(1)),
        ("configuration-model", ConfigurationModel::paper_degree(N, 0.1).generate(1)),
        ("complete", CompleteGraph::new(N).generate(0)),
    ];
    let algorithms: Vec<Box<dyn GossipAlgorithm>> = vec![
        Box::new(PushPullGossip::default()),
        Box::new(FastGossiping::paper(N)),
        Box::new(MemoryGossip::paper(N)),
    ];
    for (label, graph) in &topologies {
        for algorithm in &algorithms {
            let outcome = algorithm.run(graph, 5);
            assert!(outcome.completed(), "{} failed to complete on {label}", algorithm.name());
            assert_eq!(outcome.fully_informed(), N, "{} on {label}", algorithm.name());
        }
    }
}

#[test]
fn figure1_ordering_holds_end_to_end() {
    let graph = paper_graph(2);
    let push_pull = PushPullGossip::default().run(&graph, 3);
    let fast = FastGossiping::paper(N).run(&graph, 3);
    let memory = MemoryGossip::paper(N).run(&graph, 3);
    let pp = push_pull.messages_per_node(Accounting::PerPacket);
    let fg = fast.messages_per_node(Accounting::PerPacket);
    let mm = memory.messages_per_node(Accounting::PerPacket);
    assert!(mm < fg, "memory {mm:.2} should be below fast-gossiping {fg:.2}");
    assert!(fg < pp, "fast-gossiping {fg:.2} should be below push-pull {pp:.2}");
}

#[test]
fn fast_gossiping_matches_complete_graph_performance_on_random_graphs() {
    // Theorem 1's message: no significant density separation for gossiping.
    let random = paper_graph(4);
    let complete = CompleteGraph::new(N).generate(0);
    let on_random = FastGossiping::paper(N).run(&random, 5);
    let on_complete = FastGossiping::paper(N).run(&complete, 5);
    let ratio = on_random.total_packets() as f64 / on_complete.total_packets() as f64;
    assert!((0.5..=2.0).contains(&ratio), "packets on G(n,p) vs K_n differ by {ratio:.2}x");
}

#[test]
fn transmissions_stay_within_the_theorem_1_envelope() {
    let graph = paper_graph(6);
    let outcome = FastGossiping::paper(N).run(&graph, 7);
    let measured = outcome.total_packets() as f64;
    // At n = 1024 the log n / log log n saving is barely visible (log log n is
    // only ~3.3), so the meaningful envelope at this scale is: stay within a
    // small constant of the n log n lower bound for O(log n)-time algorithms,
    // and do not exceed the push-pull baseline.
    assert!(
        measured < theory::gossip_logtime_lower_bound(N) * 1.5,
        "measured {measured} packets exceed 1.5 · n log n"
    );
    let baseline = PushPullGossip::default().run(&graph, 7).total_packets() as f64;
    assert!(measured < baseline, "fast-gossiping ({measured}) not below push-pull ({baseline})");
}

#[test]
fn leader_election_feeds_memory_gossiping() {
    let graph = paper_graph(8);
    let election = LeaderElection::paper(N).run(&graph, 9);
    assert!(election.succeeded());
    let leader = election.leader.unwrap();
    let outcome = MemoryGossip::paper(N).with_leader(leader).run(&graph, 10);
    assert!(outcome.completed());
    // Theorem 2 with election: O(n log log n) overall. The push phase of the
    // election keeps all nodes active for Θ(log log n) closing steps, so the
    // constant in front of log log n is around 4–6; allow 10.
    let per_node = (election.total_packets + outcome.total_packets()) as f64 / N as f64;
    let loglog = (N as f64).log2().log2();
    assert!(
        per_node < 10.0 * loglog,
        "combined per-node packets {per_node:.2} exceed 10 · log log n = {:.1}",
        10.0 * loglog
    );
}

#[test]
fn robustness_pipeline_reports_bounded_additional_loss() {
    let graph = paper_graph(11);
    let config = MemoryGossipConfig::paper_defaults(N).with_trees(3);
    let outcome = MemoryGossip::new(config).run_with_failures(&graph, 12, 64);
    assert_eq!(outcome.failed_nodes(), 64);
    let ratio = outcome.additional_loss_ratio().unwrap();
    assert!(ratio <= 4.0, "additional loss ratio {ratio:.2} too high");
}

#[test]
fn experiment_harness_runs_at_quick_scale() {
    use gossip_density::scenarios::{RepPolicy, SweepRunner};

    let sizes = [256usize, 512];
    let fig1 = SweepRunner::new().run(&experiments::fig1::spec(&sizes, 1, RepPolicy::fixed(1)));
    assert_eq!(fig1.cells.len(), sizes.len() * 3);
    assert!(fig1.cells.iter().all(|c| c.mean("completed") == Some(1.0)));

    let fig2_spec =
        experiments::robustness::loss_ratio_spec("fig2", 512, &[0, 16], 3, 2, RepPolicy::fixed(1));
    let fig2 = SweepRunner::new().run(&fig2_spec);
    assert_eq!(fig2.cells.len(), 2);
    assert_eq!(fig2.cells[0].mean("loss_ratio"), Some(0.0));

    let table = experiments::table1::run(&[1_000_000]);
    assert!(table.to_csv().contains("1000000"));
}

#[test]
fn broadcasting_is_cheaper_than_gossiping_in_complete_graphs() {
    // The motivating contrast: one message vs n messages.
    let n = 2048;
    let complete = CompleteGraph::new(n).generate(0);
    let broadcast = PushPullBroadcast::default().run(&complete, 1);
    let gossip = PushPullGossip::default().run(&complete, 1);
    assert!(broadcast.completed && gossip.completed());
    assert!(
        broadcast.transmissions < gossip.total_packets(),
        "broadcasting one rumor must cost less than full gossiping"
    );
}

#[test]
fn seeded_runs_are_reproducible_across_the_whole_stack() {
    let graph = paper_graph(13);
    for _ in 0..2 {
        let a = FastGossiping::paper(N).run(&graph, 99);
        let b = FastGossiping::paper(N).run(&graph, 99);
        assert_eq!(a.total_packets(), b.total_packets());
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.channels_opened(), b.channels_opened());
    }
}
