//! Property-based tests (proptest) on the core data structures and the
//! invariants the paper's analysis relies on.

use gossip_density::engine::DeliverySemantics;
use gossip_density::engine::{sample_failures, MessageSet, Simulation, Transfer};
use gossip_density::graphs::prelude::*;
use gossip_density::graphs::topology;
use gossip_density::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union is monotone and idempotent, and the reported "newly added" count
    /// matches the change in cardinality.
    #[test]
    fn message_set_union_invariants(
        universe in 1usize..300,
        a_ids in prop::collection::vec(0u32..300, 0..40),
        b_ids in prop::collection::vec(0u32..300, 0..40),
    ) {
        let mut a = MessageSet::empty(universe);
        for id in a_ids.iter().filter(|&&id| (id as usize) < universe) {
            a.insert(*id);
        }
        let mut b = MessageSet::empty(universe);
        for id in b_ids.iter().filter(|&&id| (id as usize) < universe) {
            b.insert(*id);
        }
        let before = a.len();
        let added = a.union_from(&b);
        prop_assert_eq!(a.len(), before + added);
        // Every element of b is now in a.
        for id in b.iter() {
            prop_assert!(a.contains(id));
        }
        // Idempotence.
        prop_assert_eq!(a.union_from(&b), 0);
        // Monotonicity: nothing was removed.
        prop_assert!(a.len() >= before);
    }

    /// difference_len(a, b) counts exactly the elements of a missing from b.
    #[test]
    fn message_set_difference_matches_naive_count(
        ids_a in prop::collection::vec(0u32..200, 0..50),
        ids_b in prop::collection::vec(0u32..200, 0..50),
    ) {
        let universe = 200;
        let mut a = MessageSet::empty(universe);
        let mut b = MessageSet::empty(universe);
        for &id in &ids_a { a.insert(id); }
        for &id in &ids_b { b.insert(id); }
        let naive = a.iter().filter(|&id| !b.contains(id)).count();
        prop_assert_eq!(a.difference_len(&b), naive);
    }

    /// The Erdős–Rényi generator produces simple graphs with symmetric
    /// adjacency and the degree sum identity.
    #[test]
    fn erdos_renyi_graphs_are_simple_and_symmetric(
        n in 2usize..200,
        p in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let g = ErdosRenyi::new(n, p).generate(seed);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_self_loops(), 0);
        prop_assert_eq!(g.num_parallel_edges(), 0);
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Symmetry: u in N(v) iff v in N(u).
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    /// The configuration model preserves the prescribed degree sequence
    /// exactly (counting loops twice).
    #[test]
    fn configuration_model_preserves_degrees(
        n in 2usize..120,
        half_d in 1usize..6,
        seed in any::<u64>(),
    ) {
        let d = 2 * half_d;
        let g = ConfigurationModel::new(n, d).generate(seed);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), d);
        }
    }

    /// Failure sampling returns distinct, in-range nodes of the requested count.
    #[test]
    fn failure_samples_are_distinct(
        n in 1usize..500,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let count = ((n as f64) * frac) as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample = sample_failures(n, count, &mut rng);
        prop_assert_eq!(sample.len(), count);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), count);
        prop_assert!(sample.iter().all(|&v| (v as usize) < n));
    }

    /// Knowledge in a simulation only ever grows, and the deferred delivery
    /// semantics never lets a message cross more than one hop per step.
    #[test]
    fn simulation_knowledge_is_monotone(
        n in 2usize..64,
        steps in 1usize..8,
        seed in any::<u64>(),
    ) {
        let g = CompleteGraph::new(n).generate(0);
        let mut sim = Simulation::new(&g, seed);
        let mut previous: Vec<usize> = (0..n).map(|v| sim.num_known(v as u32)).collect();
        for _ in 0..steps {
            let mut transfers = Vec::new();
            for v in 0..n as u32 {
                if let Some(u) = sim.open_channel(v) {
                    transfers.push(Transfer::new(v, u));
                }
            }
            sim.deliver(&transfers);
            for (v, prev) in previous.iter_mut().enumerate() {
                let now = sim.num_known(v as u32);
                prop_assert!(now >= *prev, "knowledge shrank at node {v}");
                // One push per node per step: at most n-1 new messages, and a
                // node can learn at most as many messages as it has in-neighbours
                // this step — certainly no more than n.
                prop_assert!(now <= n);
                *prev = now;
            }
        }
    }

    /// Deferred and immediate delivery reach the same fixpoint when the same
    /// transfer pattern is applied until saturation.
    #[test]
    fn delivery_semantics_agree_at_fixpoint(n in 3usize..32, seed in any::<u64>()) {
        let g = topology::ring(n);
        let mut transfers = Vec::new();
        for v in 0..n as u32 {
            for &u in g.neighbors(v) {
                transfers.push(Transfer::new(v, u));
            }
        }
        let mut deferred = Simulation::new(&g, seed).with_semantics(DeliverySemantics::Deferred);
        let mut immediate = Simulation::new(&g, seed).with_semantics(DeliverySemantics::Immediate);
        for _ in 0..n {
            deferred.deliver(&transfers);
            immediate.deliver(&transfers);
        }
        for v in 0..n as u32 {
            prop_assert!(deferred.is_fully_informed(v));
            prop_assert!(immediate.is_fully_informed(v));
        }
    }

    /// Push-pull gossiping completes on every connected test topology and its
    /// exchange count per node equals the number of rounds.
    #[test]
    fn push_pull_completes_on_connected_topologies(dim in 2u32..7, seed in any::<u64>()) {
        let g = topology::hypercube(dim);
        let outcome = PushPullGossip::default().run(&g, seed);
        prop_assert!(outcome.completed());
        let per_node = outcome.messages_per_node(Accounting::PerChannelExchange);
        prop_assert!((per_node - outcome.rounds() as f64).abs() < 1e-9);
    }

    /// The gossip outcome's packet totals are consistent with the per-phase
    /// snapshots for fast-gossiping.
    #[test]
    fn fast_gossiping_phase_packets_sum_to_total(seed in any::<u64>()) {
        let n = 256;
        let g = ErdosRenyi::paper_density(n).generate(seed);
        let outcome = FastGossiping::paper(n).run(&g, seed);
        let total: u64 = ["phase1-distribution", "phase2-random-walks", "phase3-broadcast"]
            .iter()
            .map(|label| outcome.packets_in_phase(label).unwrap_or(0))
            .sum();
        prop_assert_eq!(total, outcome.total_packets());
    }
}
