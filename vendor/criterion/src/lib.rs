//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! Implements the subset of the `criterion 0.5` API used by this workspace:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is plain wall-clock timing — no
//! statistics, plots, or saved baselines. `cargo bench -- --test` runs every
//! benchmark body exactly once, like real criterion's test mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How the harness executes benchmark bodies this run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Time each benchmark and print a wall-clock estimate.
    Measure,
    /// Run each benchmark body once to check it works (`--test`).
    Test,
    /// Enumerate benchmark names without running them (`--list`).
    List,
}

/// Entry point of the harness, mirroring `criterion::Criterion`.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: Mode::Measure, filter: None, sample_size: 100 }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the command line, recognising the flags
    /// cargo-bench passes through (`--test`, `--list`, `--bench`, a filter).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.mode = Mode::Test,
                "--list" => c.mode = Mode::List,
                // Flags real criterion accepts and we can safely ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if other.starts_with("--") => {}
                filter => c.filter = Some(filter.to_string()),
            }
        }
        c
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let sample_size = self.sample_size;
        self.run_one(&name, sample_size, f);
        self
    }

    fn run_one<F>(&self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        match self.mode {
            Mode::List => println!("{name}: benchmark"),
            Mode::Test => {
                let mut bencher = Bencher {
                    mode: Mode::Test,
                    sample_size,
                    elapsed: Duration::ZERO,
                    iterations: 0,
                };
                f(&mut bencher);
                println!("test {name} ... ok");
            }
            Mode::Measure => {
                let mut bencher = Bencher {
                    mode: Mode::Measure,
                    sample_size,
                    elapsed: Duration::ZERO,
                    iterations: 0,
                };
                f(&mut bencher);
                let per_iter = if bencher.iterations == 0 {
                    Duration::ZERO
                } else {
                    bencher.elapsed / bencher.iterations as u32
                };
                println!("{name}: {per_iter:>12.2?}/iter ({} iterations)", bencher.iterations);
            }
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&name, sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The stand-in keeps no cross-benchmark state, so this
    /// only exists for API compatibility.)
    pub fn finish(self) {}
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a [`BenchmarkId`], so `&str` and `BenchmarkId` can both
/// name benchmarks.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// Timer handed to benchmark closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the elapsed wall-clock time. In
    /// `--test` mode the routine runs exactly once.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.mode == Mode::Test {
            black_box(routine());
            self.iterations = 1;
            return;
        }
        // One untimed warm-up call, then time `sample_size` iterations.
        black_box(routine());
        let iterations = self.sample_size.max(1) as u64;
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += iterations;
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(32).0, "32");
        assert_eq!(BenchmarkId::new("gen", 128).0, "gen/128");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let criterion = Criterion { mode: Mode::Test, filter: None, sample_size: 100 };
        let mut runs = 0;
        criterion.run_one("probe", 100, |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_honors_sample_size() {
        let criterion = Criterion { mode: Mode::Measure, filter: None, sample_size: 100 };
        let mut runs = 0u64;
        criterion.run_one("probe", 7, |b| b.iter(|| runs += 1));
        // One warm-up call plus seven timed iterations.
        assert_eq!(runs, 8);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let criterion =
            Criterion { mode: Mode::Test, filter: Some("wanted".into()), sample_size: 100 };
        let mut runs = 0;
        criterion.run_one("other", 100, |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        criterion.run_one("wanted_bench", 100, |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
