//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, implemented on top of `std::thread::scope`.
//!
//! Only the scoped-thread subset used by this workspace is provided:
//! [`thread::scope`], [`thread::Scope::spawn`], and
//! [`thread::ScopedJoinHandle::join`]. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope in which threads borrowing from the environment can be spawned.
    ///
    /// Thin wrapper around [`std::thread::Scope`] whose `spawn` passes the
    /// scope to the closure again, matching crossbeam's signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: deriving would put bounds on the lifetimes' usage sites.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread, mirroring
    /// `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so it
        /// can spawn further threads, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Creates a scope for spawning threads that borrow from the environment.
    ///
    /// Returns `Ok(r)` with the closure's result; unlike crossbeam, a panic in
    /// an unjoined child propagates at scope exit instead of surfacing as
    /// `Err` (this workspace joins every handle, so the difference is moot).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawns_and_joins_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| scope.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_passed_scope() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn join_surfaces_panics_as_err() {
        let joined = super::thread::scope(|scope| -> super::thread::Result<()> {
            scope.spawn(|_| panic!("boom")).join()
        })
        .unwrap();
        assert!(joined.is_err());
    }
}
