//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Implements the subset of the `proptest 1` API used by this workspace: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`], [`any`],
//! integer / float range strategies, tuple strategies,
//! [`Strategy::prop_map`], [`option::of`], `prop::collection::vec`, and
//! [`ProptestConfig`]. There is **no shrinking**: a failing case panics with
//! the case number and seed in the message instead of a minimized
//! counterexample. The `PROPTEST_CASES` environment variable caps the case
//! count, which CI uses to bound runtime. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, capped by the `PROPTEST_CASES` environment
    /// variable when set (used to bound CI runtime).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

/// A generator of values of type [`Strategy::Value`], mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps the generated values through `f`, mirroring
    /// `Strategy::prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategies over `Option`, mirroring `proptest::option`.
pub mod option {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` values from `inner` three quarters of the time and
    /// `None` otherwise (mirroring real proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical uniform generator, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy combinators namespace, mirroring the `proptest::prop` re-export.
pub mod prop {
    /// Collection strategies, mirroring `proptest::collection`.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a length drawn
        /// from a range.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose length is drawn uniformly from `size` and
        /// whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, mirroring `proptest::prop_assert!`.
///
/// Without shrinking there is no failure persistence, so this simply panics
/// (the surrounding [`proptest!`] loop reports the case number and seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// test that draws `arg` from `strategy` for every case. Cases are seeded
/// deterministically from the case index so failures reproduce exactly.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.effective_cases() {
                    // Derived, fixed per-case seed: failures name the exact
                    // case and rerunning reproduces it bit-for-bit.
                    let seed = 0x5EED_0000_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut proptest_rng =
                        <::rand::rngs::SmallRng as ::rand::SeedableRng>::seed_from_u64(seed);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng);)+
                    let run = move || $body;
                    if let Err(payload) = ::std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest case {case} (seed {seed:#x}) failed in {}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..500 {
            let v = Strategy::sample(&(5usize..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::sample(&(0.0f64..0.25), &mut rng);
            assert!((0.0..0.25).contains(&f));
        }
    }

    #[test]
    fn tuple_map_and_option_strategies_compose() {
        let mut rng = SmallRng::seed_from_u64(9);
        let strategy = (1usize..5, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f));
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..300 {
            let (n, f) = Strategy::sample(&strategy, &mut rng);
            assert!(n % 2 == 0 && (2..10).contains(&n));
            assert!((0.0..1.0).contains(&f));
            match Strategy::sample(&crate::option::of(0u32..4), &mut rng) {
                Some(v) => {
                    assert!(v < 4);
                    saw_some = true;
                }
                None => saw_none = true,
            }
        }
        assert!(saw_none && saw_some, "option::of must produce both variants");
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u32..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn effective_cases_defaults_to_configured() {
        // Do not touch the environment here: tests run concurrently and
        // PROPTEST_CASES may be legitimately set by the harness.
        let config = ProptestConfig::with_cases(64);
        assert!(config.effective_cases() <= 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(n in 1usize..50, flag in any::<bool>()) {
            prop_assert!(n >= 1);
            prop_assert_eq!(usize::from(flag) * 2, if flag { 2 } else { 0 });
        }
    }
}
