//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the subset of the `rand 0.8` API used by this workspace:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] (a xoshiro256++ generator seeded through SplitMix64).
//! See `vendor/README.md` for the contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Accepts `a..b` and `a..=b` for the integer types used in this
    /// workspace and `a..b` for `f64`, like `rand 0.8`'s `gen_range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a random word to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, span)` by widening multiplication, which
/// avoids the modulo bias of naive `% span` sampling.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++), standing in for
    /// `rand::rngs::SmallRng`.
    ///
    /// Streams are deterministic per seed but not bit-compatible with the
    /// real `rand` crate.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..1 << 60), c.gen_range(0u64..1 << 60));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn uniform_integers_cover_small_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
